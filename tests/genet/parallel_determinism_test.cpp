// Determinism contract of the parallel execution engine: every parallel hot
// loop pre-forks one RNG stream per work item serially and merges results in
// index order, so its output is bit-identical at any thread count. These
// tests pin that contract for rollout collection (rl::collect_batch) and the
// Genet evaluation helpers at 1, 2, and 8 threads.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "genet/adapter.hpp"
#include "genet/curriculum.hpp"
#include "netgym/flight.hpp"
#include "netgym/health.hpp"
#include "netgym/parallel.hpp"
#include "netgym/telemetry.hpp"
#include "netgym/tracing.hpp"
#include "rl/trainer.hpp"

namespace {

using genet::AbrAdapter;
using genet::LbAdapter;
using netgym::Rng;

const std::vector<int> kThreadCounts{1, 2, 8};

/// Restores the global pool to its default size when a test exits.
struct PoolGuard {
  ~PoolGuard() { netgym::set_num_threads(0); }
};

rl::MlpPolicy make_test_policy(const genet::TaskAdapter& adapter) {
  netgym::Rng init(42);
  rl::TrainerOptions defaults;
  return rl::MlpPolicy(adapter.obs_size(), adapter.action_count(),
                       defaults.hidden, init);
}

TEST(ParallelDeterminism, CollectBatchIsBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  LbAdapter adapter(1);
  rl::MlpPolicy policy = make_test_policy(adapter);
  netgym::ConfigDistribution dist(adapter.space());
  const rl::EnvFactory factory = adapter.factory_for(dist);

  std::vector<rl::RolloutBatch> batches;
  for (int threads : kThreadCounts) {
    netgym::set_num_threads(threads);
    Rng rng(1234);
    batches.push_back(rl::collect_batch(policy, factory, rng, 9,
                                        /*max_steps_per_episode=*/50));
  }
  for (std::size_t b = 1; b < batches.size(); ++b) {
    ASSERT_EQ(batches[b].size(), batches[0].size())
        << kThreadCounts[b] << " threads";
    for (std::size_t i = 0; i < batches[0].size(); ++i) {
      const rl::Transition& expect = batches[0].transitions[i];
      const rl::Transition& got = batches[b].transitions[i];
      ASSERT_EQ(got.obs, expect.obs) << "step " << i;
      ASSERT_EQ(got.action, expect.action) << "step " << i;
      ASSERT_EQ(got.reward, expect.reward) << "step " << i;
      ASSERT_EQ(got.done, expect.done) << "step " << i;
    }
  }
}

TEST(ParallelDeterminism, TestOnConfigIsBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  AbrAdapter adapter(1);
  rl::MlpPolicy policy = make_test_policy(adapter);
  policy.set_greedy(true);
  const netgym::Config config = adapter.space().midpoint();

  std::vector<double> rewards;
  for (int threads : kThreadCounts) {
    netgym::set_num_threads(threads);
    Rng rng(77);
    rewards.push_back(genet::test_on_config(adapter, policy, config, 8, rng));
  }
  for (std::size_t i = 1; i < rewards.size(); ++i) {
    EXPECT_EQ(rewards[i], rewards[0]) << kThreadCounts[i] << " threads";
  }
}

TEST(ParallelDeterminism, GapToBaselineIsBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  LbAdapter adapter(1);
  rl::MlpPolicy policy = make_test_policy(adapter);
  policy.set_greedy(true);
  const netgym::Config config = adapter.space().midpoint();

  std::vector<double> gaps;
  for (int threads : kThreadCounts) {
    netgym::set_num_threads(threads);
    Rng rng(5);
    gaps.push_back(
        genet::gap_to_baseline(adapter, policy, "llf", config, 8, rng));
  }
  for (std::size_t i = 1; i < gaps.size(); ++i) {
    EXPECT_EQ(gaps[i], gaps[0]) << kThreadCounts[i] << " threads";
  }
}

TEST(ParallelDeterminism, TrainingIsBitIdenticalAcrossThreadCounts) {
  // One full A2C iteration (parallel rollout + serial update) must leave the
  // network in exactly the same state regardless of the pool size.
  PoolGuard guard;
  LbAdapter adapter(1);
  std::vector<std::vector<double>> params;
  for (int threads : kThreadCounts) {
    netgym::set_num_threads(threads);
    auto trainer = genet::train_traditional(adapter, /*iterations=*/3,
                                            /*seed=*/9);
    params.push_back(trainer->snapshot());
  }
  for (std::size_t i = 1; i < params.size(); ++i) {
    EXPECT_EQ(params[i], params[0]) << kThreadCounts[i] << " threads";
  }
}

std::vector<double> run_two_round_curriculum() {
  LbAdapter adapter(1);
  genet::SearchOptions search;
  search.bo_trials = 4;
  search.envs_per_eval = 2;
  genet::CurriculumOptions options;
  options.rounds = 2;
  options.iters_per_round = 2;
  options.seed = 11;
  genet::CurriculumTrainer trainer(
      adapter, std::make_unique<genet::GenetScheme>("llf", search), options);
  trainer.run();
  return trainer.trainer().snapshot();
}

TEST(ParallelDeterminism, TelemetryOnAndOffAreBitIdenticalAcrossThreads) {
  // Enabling the JSONL sink must not consume RNG streams or reorder work:
  // a 2-round curriculum run yields bit-identical parameters with telemetry
  // off and on, at 1 and 8 threads -- and the log it writes is parseable
  // JSONL carrying iteration, round, and BO-trial events.
  PoolGuard guard;
  const std::string path =
      ::testing::TempDir() + "determinism_telemetry.jsonl";

  netgym::set_num_threads(1);
  const std::vector<double> baseline = run_two_round_curriculum();

  std::vector<std::string> log_lines;
  for (int threads : {1, 8}) {
    netgym::set_num_threads(threads);
    netgym::telemetry::open_global_logger(path);
    const std::vector<double> with_telemetry = run_two_round_curriculum();
    netgym::telemetry::set_global_logger(nullptr);
    EXPECT_EQ(with_telemetry, baseline) << threads << " threads";

    log_lines.clear();
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) log_lines.push_back(line);
  }
  std::remove(path.c_str());

  // The trajectory of the last (8-thread) run: 2 rounds x 2 iterations and
  // 2 rounds x 4 BO trials, each event a one-line JSON object.
  int iterations = 0, rounds = 0, bo_trials = 0;
  for (const std::string& line : log_lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"type\":\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"step\":"), std::string::npos) << line;
    if (line.find("\"type\":\"iteration\"") != std::string::npos) ++iterations;
    if (line.find("\"type\":\"round\"") != std::string::npos) ++rounds;
    if (line.find("\"type\":\"bo_trial\"") != std::string::npos) ++bo_trials;
  }
  EXPECT_EQ(iterations, 4);
  EXPECT_EQ(rounds, 2);
  EXPECT_EQ(bo_trials, 8);
}

TEST(ParallelDeterminism, TracingAndFlightAreBitIdenticalAcrossThreads) {
  // Span tracing and the flight recorder are strictly observational: they
  // never consume RNG and never reorder work, so enabling both must leave a
  // 2-round curriculum run bit-identical to the untraced baseline at 1 and 4
  // threads -- while still collecting spans and episodes.
  PoolGuard guard;
  netgym::set_num_threads(1);
  const std::vector<double> baseline = run_two_round_curriculum();

  for (int threads : {1, 4}) {
    netgym::set_num_threads(threads);
    netgym::tracing::start();
    netgym::flight::Recorder::instance().reset();
    netgym::flight::Recorder::instance().enable(/*worst_k=*/4);
    const std::vector<double> observed = run_two_round_curriculum();
    netgym::tracing::stop();
    netgym::flight::Recorder::instance().disable();

    EXPECT_EQ(observed, baseline) << threads << " threads";
    EXPECT_GT(netgym::tracing::recorded_spans(), 0u)
        << threads << " threads";
    EXPECT_GT(netgym::flight::Recorder::instance().episodes_seen(), 0u)
        << threads << " threads";
  }
  netgym::flight::Recorder::instance().reset();
}

TEST(ParallelDeterminism, HealthMonitoringIsBitIdenticalAcrossThreads) {
  // The health watchdog and its extra trainer statistics (gradient norms,
  // update-KL forward passes, parameter scans) plus the BO provenance
  // records are strictly observational: a 2-round curriculum run with the
  // watchdog and a JSONL sink enabled yields bit-identical parameters to the
  // unmonitored baseline at 1 and 4 threads -- and the stream carries one
  // `health` record per training iteration and one `bo_trial_provenance`
  // record per BO trial.
  PoolGuard guard;
  const std::string path = ::testing::TempDir() + "determinism_health.jsonl";

  netgym::set_num_threads(1);
  const std::vector<double> baseline = run_two_round_curriculum();

  std::vector<std::string> log_lines;
  for (int threads : {1, 4}) {
    netgym::set_num_threads(threads);
    netgym::health::Watchdog::instance().reset();
    netgym::health::Watchdog::instance().enable({});
    netgym::telemetry::open_global_logger(path);
    const std::vector<double> monitored = run_two_round_curriculum();
    netgym::telemetry::set_global_logger(nullptr);
    netgym::health::Watchdog::instance().disable();
    EXPECT_EQ(monitored, baseline) << threads << " threads";
    EXPECT_EQ(netgym::health::Watchdog::instance().checks(), 4u)
        << threads << " threads";

    log_lines.clear();
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) log_lines.push_back(line);
  }
  std::remove(path.c_str());
  netgym::health::Watchdog::instance().reset();

  // Last (4-thread) run's stream: 2 rounds x 2 iterations -> 4 health
  // records; 2 rounds x 4 BO trials -> 8 provenance records, each naming its
  // round, scheme, and measured gap.
  int health_records = 0, provenance_records = 0;
  for (const std::string& line : log_lines) {
    if (line.find("\"type\":\"health\"") != std::string::npos) {
      ++health_records;
      EXPECT_NE(line.find("\"actor_grad_norm\":"), std::string::npos) << line;
      EXPECT_NE(line.find("\"approx_kl\":"), std::string::npos) << line;
    }
    if (line.find("\"type\":\"bo_trial_provenance\"") != std::string::npos) {
      ++provenance_records;
      EXPECT_NE(line.find("\"round\":"), std::string::npos) << line;
      EXPECT_NE(line.find("\"scheme\":\"genet\""), std::string::npos) << line;
      EXPECT_NE(line.find("\"measured_gap\":"), std::string::npos) << line;
    }
  }
  EXPECT_EQ(health_records, 4);
  EXPECT_EQ(provenance_records, 8);
}

TEST(ParallelDeterminism, CheckpointingIsObservationalAndThreadInvariant) {
  // Checkpoint saves are read-only with respect to training state: a
  // curriculum run that snapshots to disk after every round -- and reloads
  // its own snapshot mid-run -- must stay bit-identical to the plain run at
  // every thread count.
  PoolGuard guard;
  const std::string path =
      ::testing::TempDir() + "determinism_checkpoint.ckpt";
  netgym::set_num_threads(1);
  const std::vector<double> baseline = run_two_round_curriculum();

  for (int threads : kThreadCounts) {
    netgym::set_num_threads(threads);
    LbAdapter adapter(1);
    genet::SearchOptions search;
    search.bo_trials = 4;
    search.envs_per_eval = 2;
    genet::CurriculumOptions options;
    options.rounds = 2;
    options.iters_per_round = 2;
    options.seed = 11;
    genet::CurriculumTrainer trainer(
        adapter, std::make_unique<genet::GenetScheme>("llf", search), options);
    trainer.run_round();
    trainer.save_checkpoint(path);
    trainer.load_checkpoint(path);  // reload mid-run: must be a no-op
    trainer.run_round();
    trainer.save_checkpoint(path);
    EXPECT_EQ(trainer.trainer().snapshot(), baseline)
        << threads << " threads";
  }
  std::remove(path.c_str());
}

TEST(ParallelDeterminism, NonCloneablePoliciesStillEvaluateDeterministically) {
  // A policy without clone() (the default) forces the serial path even when
  // the pool is wide; results must match the 1-thread run bit-for-bit.
  class FixedAction : public netgym::Policy {
   public:
    int act(const netgym::Observation&, Rng&) override { return 0; }
  };
  PoolGuard guard;
  AbrAdapter adapter(1);
  FixedAction policy;
  const netgym::Config config = adapter.space().midpoint();
  std::vector<double> rewards;
  for (int threads : kThreadCounts) {
    netgym::set_num_threads(threads);
    Rng rng(3);
    rewards.push_back(genet::test_on_config(adapter, policy, config, 6, rng));
  }
  for (std::size_t i = 1; i < rewards.size(); ++i) {
    EXPECT_EQ(rewards[i], rewards[0]) << kThreadCounts[i] << " threads";
  }
}

}  // namespace
