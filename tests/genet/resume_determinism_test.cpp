// The headline invariant of the checkpoint subsystem (ISSUE 4): a curriculum
// run killed at any round boundary and resumed from its snapshot -- into a
// freshly constructed trainer, possibly at a different thread count --
// produces bit-identical weights, round records, and evaluation rewards to a
// run that was never interrupted. Also pins the failure side: corrupted,
// truncated, or mismatched snapshots are rejected with CheckpointError
// without partially mutating the trainer, which keeps training usable.

#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "genet/adapter.hpp"
#include "genet/curriculum.hpp"
#include "netgym/checkpoint.hpp"
#include "netgym/parallel.hpp"

namespace {

namespace ckpt = netgym::checkpoint;

struct PoolGuard {
  ~PoolGuard() { netgym::set_num_threads(0); }
};

constexpr int kRounds = 6;

/// One curriculum run under test: a small LB Genet curriculum, heavy enough
/// that every kind of durable state (policy, critic, optimizers, return
/// norm, RNG streams, distribution, round clock) evolves across rounds.
struct TrainerRig {
  genet::LbAdapter adapter{1};
  std::unique_ptr<genet::CurriculumTrainer> trainer;

  TrainerRig() {
    genet::SearchOptions search;
    search.bo_trials = 2;
    search.envs_per_eval = 2;
    genet::CurriculumOptions options;
    options.rounds = kRounds;
    options.iters_per_round = 1;
    options.seed = 11;
    trainer = std::make_unique<genet::CurriculumTrainer>(
        adapter, std::make_unique<genet::GenetScheme>("llf", search), options);
  }
};

/// Everything we compare bit-for-bit between runs.
struct Outcome {
  std::vector<double> params;
  std::vector<genet::CurriculumRound> records;
  std::string final_state;  // encoded snapshot: optimizers, RNG, dist, ...
};

void append_records(Outcome& outcome,
                    const std::vector<genet::CurriculumRound>& records) {
  outcome.records.insert(outcome.records.end(), records.begin(),
                         records.end());
}

Outcome finish(TrainerRig& run, Outcome outcome) {
  outcome.params = run.trainer->trainer().snapshot();
  ckpt::Snapshot snap;
  run.trainer->save_state(snap, "");
  outcome.final_state = snap.encode();
  return outcome;
}

Outcome run_uninterrupted() {
  TrainerRig run;
  Outcome outcome;
  append_records(outcome, run.trainer->run());
  return finish(run, std::move(outcome));
}

/// Simulate a crash after `kill_round` rounds: run that far, snapshot to
/// disk, destroy the whole trainer, rebuild it from scratch, load the
/// snapshot, and run to completion.
Outcome run_killed_at(int kill_round, const std::string& path) {
  Outcome outcome;
  {
    TrainerRig first;
    for (int r = 0; r < kill_round; ++r) {
      outcome.records.push_back(first.trainer->run_round());
    }
    first.trainer->save_checkpoint(path);
  }  // the "kill": every live object is gone
  TrainerRig resumed;
  resumed.trainer->load_checkpoint(path);
  EXPECT_EQ(resumed.trainer->rounds_completed(), kill_round);
  append_records(outcome, resumed.trainer->run());
  return finish(resumed, std::move(outcome));
}

void expect_same_outcome(const Outcome& got, const Outcome& want) {
  ASSERT_EQ(got.params.size(), want.params.size());
  for (std::size_t i = 0; i < got.params.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.params[i]),
              std::bit_cast<std::uint64_t>(want.params[i]))
        << "param " << i;
  }
  ASSERT_EQ(got.records.size(), want.records.size());
  for (std::size_t i = 0; i < got.records.size(); ++i) {
    EXPECT_EQ(got.records[i].round, want.records[i].round);
    EXPECT_EQ(got.records[i].promoted.values, want.records[i].promoted.values)
        << "round " << i;
    EXPECT_EQ(got.records[i].selection_score, want.records[i].selection_score);
    EXPECT_EQ(got.records[i].train_reward, want.records[i].train_reward);
  }
  // The strongest check: every byte of durable state (both optimizers'
  // moments, the return normalizer, all RNG streams, the distribution)
  // matches, not just the policy parameters.
  EXPECT_EQ(got.final_state, want.final_state);
}

TEST(ResumeDeterminism, KillAndResumeMatchesUninterruptedAtAnyThreadCount) {
  PoolGuard guard;
  const std::string path = ::testing::TempDir() + "resume_determinism.ckpt";
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    netgym::set_num_threads(threads);
    const Outcome baseline = run_uninterrupted();
    for (int kill_round : {1, 3, 5}) {
      SCOPED_TRACE("kill_round=" + std::to_string(kill_round));
      expect_same_outcome(run_killed_at(kill_round, path), baseline);
    }
  }
  std::remove(path.c_str());
}

TEST(ResumeDeterminism, ResumeAtDifferentThreadCountIsStillBitIdentical) {
  PoolGuard guard;
  const std::string path = ::testing::TempDir() + "resume_threads.ckpt";
  netgym::set_num_threads(1);
  const Outcome baseline = run_uninterrupted();

  // Crash at round 3 on 1 thread, resume on 4: the forked-stream contract
  // makes thread count invisible to the result.
  Outcome outcome;
  {
    TrainerRig first;
    for (int r = 0; r < 3; ++r) {
      outcome.records.push_back(first.trainer->run_round());
    }
    first.trainer->save_checkpoint(path);
  }
  netgym::set_num_threads(4);
  TrainerRig resumed;
  resumed.trainer->load_checkpoint(path);
  append_records(outcome, resumed.trainer->run());
  expect_same_outcome(finish(resumed, std::move(outcome)), baseline);
  std::remove(path.c_str());
}

TEST(ResumeDeterminism, SelfPlaySchemeStateSurvivesResume) {
  // SelfPlayScheme is the one scheme with cross-round state (the frozen
  // reference opponent); a resumed run must keep competing against the same
  // opponent and stay bit-identical.
  const auto run_selfplay = [](int kill_round, const std::string& path) {
    genet::SearchOptions search;
    search.bo_trials = 2;
    search.envs_per_eval = 2;
    genet::CurriculumOptions options;
    options.rounds = 3;
    options.iters_per_round = 1;
    options.seed = 7;
    genet::LbAdapter adapter(1);
    std::vector<genet::CurriculumRound> records;
    genet::CurriculumTrainer first(
        adapter, std::make_unique<genet::SelfPlayScheme>(search), options);
    for (int r = 0; r < kill_round; ++r) records.push_back(first.run_round());
    if (kill_round < options.rounds) {
      if (!path.empty()) {
        first.save_checkpoint(path);
        genet::CurriculumTrainer resumed(
            adapter, std::make_unique<genet::SelfPlayScheme>(search), options);
        resumed.load_checkpoint(path);
        for (const auto& r : resumed.run()) records.push_back(r);
        ckpt::Snapshot snap;
        resumed.save_state(snap, "");
        return std::make_pair(records, snap.encode());
      }
      for (const auto& r : first.run()) records.push_back(r);
    }
    ckpt::Snapshot snap;
    first.save_state(snap, "");
    return std::make_pair(records, snap.encode());
  };

  const std::string path = ::testing::TempDir() + "selfplay_resume.ckpt";
  const auto baseline = run_selfplay(3, "");
  const auto resumed = run_selfplay(1, path);
  EXPECT_EQ(resumed.second, baseline.second);
  ASSERT_EQ(resumed.first.size(), baseline.first.size());
  for (std::size_t i = 0; i < baseline.first.size(); ++i) {
    EXPECT_EQ(resumed.first[i].promoted.values,
              baseline.first[i].promoted.values);
    EXPECT_EQ(resumed.first[i].train_reward, baseline.first[i].train_reward);
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------- rejection behavior

class CheckpointRejection : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-unique path: ctest runs each test of this fixture as its own
    // process, concurrently under -j, and a shared literal name makes one
    // test's TearDown unlink the file another is still reading.
    path_ = ::testing::TempDir() + "rejection_" +
            std::to_string(::getpid()) + ".ckpt";
    run_.trainer->run_round();
    run_.trainer->save_checkpoint(path_);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string file_contents() {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  void overwrite(const std::string& contents) {
    std::ofstream out(path_, std::ios::binary);
    out << contents;
  }

  std::string trainer_state() {
    ckpt::Snapshot snap;
    run_.trainer->save_state(snap, "");
    return snap.encode();
  }

  TrainerRig run_;
  std::string path_;
};

TEST_F(CheckpointRejection, CorruptedSnapshotIsRejectedWithoutMutation) {
  std::string contents = file_contents();
  contents[contents.size() / 2] ^= 0x01;  // flip one payload bit
  overwrite(contents);

  const std::string before = trainer_state();
  EXPECT_THROW(run_.trainer->load_checkpoint(path_), ckpt::CheckpointError);
  EXPECT_EQ(trainer_state(), before);

  // The trainer is still fully usable: the next round runs normally.
  EXPECT_EQ(run_.trainer->run_round().round, 1);
}

TEST_F(CheckpointRejection, TruncatedSnapshotIsRejectedWithoutMutation) {
  const std::string contents = file_contents();
  overwrite(contents.substr(0, contents.size() / 2));

  const std::string before = trainer_state();
  EXPECT_THROW(run_.trainer->load_checkpoint(path_), ckpt::CheckpointError);
  EXPECT_EQ(trainer_state(), before);
}

TEST_F(CheckpointRejection, SchemeMismatchIsRejectedWithoutMutation) {
  // A snapshot from a Genet-scheme run must not load into a CL3 trainer.
  genet::CurriculumOptions options;
  options.rounds = kRounds;
  options.iters_per_round = 1;
  options.seed = 11;
  genet::SearchOptions search;
  search.bo_trials = 2;
  search.envs_per_eval = 2;
  genet::CurriculumTrainer other(
      run_.adapter, std::make_unique<genet::GapToOptimumScheme>(search),
      options);
  ckpt::Snapshot before;
  other.save_state(before, "");
  EXPECT_THROW(other.load_checkpoint(path_), ckpt::CheckpointError);
  ckpt::Snapshot after;
  other.save_state(after, "");
  EXPECT_EQ(after.encode(), before.encode());
}

TEST_F(CheckpointRejection, OutOfRangeRoundIsRejected) {
  // Patch the round counter in the (textual) payload to a value beyond
  // options.rounds; everything else stays internally consistent.
  std::string payload = ckpt::read_file(path_).encode();
  const std::string needle = "round i 1\n";
  const std::size_t at = payload.find(needle);
  ASSERT_NE(at, std::string::npos);
  payload.replace(at, needle.size(), "round i 99\n");
  const ckpt::Snapshot bad = ckpt::Snapshot::decode(payload);

  const std::string before = trainer_state();
  EXPECT_THROW(run_.trainer->load_state(bad, ""), ckpt::CheckpointError);
  EXPECT_EQ(trainer_state(), before);
}

}  // namespace
