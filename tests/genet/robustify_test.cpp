// Tests for the Robustify adversarial-bandwidth-generator pipeline (A.6).

#include "genet/robustify.hpp"

#include <gtest/gtest.h>

#include "abr/env.hpp"
#include "genet/curriculum.hpp"

namespace {

using genet::AbrAdversary;
using genet::RobustifyOptions;
using netgym::Rng;

RobustifyOptions tiny_options() {
  RobustifyOptions options;
  options.adversary_iters = 5;
  options.video_length_s = 40.0;  // 10 chunks per adversary episode
  return options;
}

rl::MlpPolicy make_victim(Rng& rng) {
  return rl::MlpPolicy(abr::AbrEnv::kObsSize, abr::kBitrateCount, {16}, rng);
}

TEST(AbrAdversary, ValidatesOptions) {
  Rng rng(1);
  rl::MlpPolicy victim = make_victim(rng);
  RobustifyOptions bad = tiny_options();
  bad.bw_levels = 1;
  EXPECT_THROW(AbrAdversary(victim, bad, 1), std::invalid_argument);
  bad = tiny_options();
  bad.max_bw_mbps = bad.min_bw_mbps;
  EXPECT_THROW(AbrAdversary(victim, bad, 1), std::invalid_argument);
}

TEST(AbrAdversary, GeneratesValidTracesWithinBandwidthLevels) {
  Rng rng(2);
  rl::MlpPolicy victim = make_victim(rng);
  AbrAdversary adversary(victim, tiny_options(), 3);
  adversary.train();
  Rng gen_rng(5);
  for (int i = 0; i < 3; ++i) {
    const netgym::Trace trace = adversary.generate(gen_rng);
    ASSERT_NO_THROW(trace.validate());
    EXPECT_GE(trace.min_bandwidth(), tiny_options().min_bw_mbps - 1e-9);
    EXPECT_LE(trace.max_bandwidth(), tiny_options().max_bw_mbps + 1e-9);
    // One segment per chunk plus the terminal hold sample.
    EXPECT_GE(trace.size(), 10u);
  }
}

TEST(AbrAdversary, GeneratedTracesAreDiverse) {
  Rng rng(2);
  rl::MlpPolicy victim = make_victim(rng);
  AbrAdversary adversary(victim, tiny_options(), 3);
  adversary.train();
  Rng gen_rng(5);
  const netgym::Trace a = adversary.generate(gen_rng);
  const netgym::Trace b = adversary.generate(gen_rng);
  EXPECT_NE(a.bandwidth_mbps, b.bandwidth_mbps);
}

TEST(AbrAdversary, FindsGenuinelyAdversarialTraces) {
  // Against an untrained victim, the regret-minus-smoothness objective is
  // large and positive (the victim is far from the offline optimum on the
  // generated traces), and stays within the per-chunk reward bounds.
  Rng rng(7);
  rl::MlpPolicy victim = make_victim(rng);
  RobustifyOptions options = tiny_options();
  options.adversary_iters = 20;
  AbrAdversary adversary(victim, options, 11);
  adversary.train();
  EXPECT_GT(adversary.last_objective(), 0.0);
  EXPECT_LT(adversary.last_objective(), 10.0 * 400.0);  // sane magnitude
}

TEST(RobustifyTrain, ProducesARunnablePolicy) {
  RobustifyOptions options = tiny_options();
  options.adversary_iters = 4;
  auto trainer = genet::robustify_train(/*space_id=*/1, /*pretrain=*/5,
                                        /*retrain=*/5, /*alternations=*/1,
                                        options, 9);
  ASSERT_NE(trainer, nullptr);
  genet::AbrAdapter adapter(1);
  trainer->policy().set_greedy(true);
  netgym::ConfigDistribution dist(adapter.space());
  Rng rng(3);
  const double reward = genet::test_on_distribution(
      adapter, trainer->policy(), dist, 5, rng);
  EXPECT_TRUE(std::isfinite(reward));
}

TEST(RobustifyTrain, ValidatesAlternations) {
  EXPECT_THROW(
      genet::robustify_train(1, 2, 2, 0, tiny_options(), 1),
      std::invalid_argument);
}

}  // namespace
