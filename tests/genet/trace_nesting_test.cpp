// Acceptance check for the span tracer: a small CC Genet curriculum run,
// traced end to end, must produce a Chrome trace-event file whose spans nest
// round -> bo_trial -> eval -> episode by time containment. The file is
// parsed line by line (the writer emits one event per line by design).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "genet/adapter.hpp"
#include "genet/curriculum.hpp"
#include "netgym/parallel.hpp"
#include "netgym/tracing.hpp"

namespace {

namespace tracing = netgym::tracing;

struct Span {
  std::string name;
  double ts = 0.0;   // microseconds
  double dur = 0.0;  // microseconds
  double end() const { return ts + dur; }
};

/// Extracts the double following `"key":` on `line`, or NaN if absent.
double extract_number(const std::string& line, const std::string& key) {
  const std::string marker = "\"" + key + "\":";
  const auto pos = line.find(marker);
  if (pos == std::string::npos) return std::nan("");
  return std::strtod(line.c_str() + pos + marker.size(), nullptr);
}

std::string extract_string(const std::string& line, const std::string& key) {
  const std::string marker = "\"" + key + "\":\"";
  const auto pos = line.find(marker);
  if (pos == std::string::npos) return {};
  const auto start = pos + marker.size();
  const auto end = line.find('"', start);
  return line.substr(start, end - start);
}

std::vector<Span> parse_spans(const std::string& path) {
  std::ifstream in(path);
  std::vector<Span> spans;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"ph\":\"X\"") == std::string::npos) continue;
    Span span;
    span.name = extract_string(line, "name");
    span.ts = extract_number(line, "ts");
    span.dur = extract_number(line, "dur");
    EXPECT_FALSE(span.name.empty()) << line;
    EXPECT_FALSE(std::isnan(span.ts)) << line;
    EXPECT_FALSE(std::isnan(span.dur)) << line;
    spans.push_back(span);
  }
  return spans;
}

std::vector<Span> by_name(const std::vector<Span>& spans,
                          const std::string& name) {
  std::vector<Span> out;
  for (const auto& s : spans) {
    if (s.name == name) out.push_back(s);
  }
  return out;
}

/// True when `child` lies within `parent` in time. Timestamps in the file
/// are exact to 1 ns, so a tiny epsilon absorbs only the text round-trip.
bool contained_in(const Span& child, const Span& parent) {
  constexpr double kEpsUs = 1e-3;
  return child.ts >= parent.ts - kEpsUs &&
         child.end() <= parent.end() + kEpsUs;
}

bool contained_in_any(const Span& child, const std::vector<Span>& parents) {
  for (const auto& p : parents) {
    if (contained_in(child, p)) return true;
  }
  return false;
}

TEST(TraceNesting, CcCurriculumSpansNestRoundBoTrialEvalEpisode) {
  const std::string path = ::testing::TempDir() + "trace_nesting_cc.json";
  netgym::set_num_threads(2);
  tracing::start();
  {
    genet::CcAdapter adapter(1);
    genet::SearchOptions search;
    search.bo_trials = 2;
    search.envs_per_eval = 2;
    genet::CurriculumOptions options;
    options.rounds = 2;
    options.iters_per_round = 1;
    options.seed = 7;
    genet::CurriculumTrainer trainer(
        adapter, std::make_unique<genet::GenetScheme>("bbr", search),
        options);
    trainer.run();
  }
  tracing::stop();
  netgym::set_num_threads(0);
  ASSERT_GT(tracing::write_chrome_trace(path), 0u);
  EXPECT_EQ(tracing::dropped_spans(), 0u);

  const std::vector<Span> spans = parse_spans(path);
  const auto rounds = by_name(spans, "round");
  const auto trials = by_name(spans, "bo_trial");
  const auto evals = by_name(spans, "eval");
  const auto episodes = by_name(spans, "episode");
  EXPECT_EQ(rounds.size(), 2u);
  EXPECT_EQ(trials.size(), 4u);  // 2 rounds x 2 BO trials
  ASSERT_FALSE(evals.empty());
  ASSERT_FALSE(episodes.empty());

  // Every BO trial runs inside a curriculum round.
  for (const auto& trial : trials) {
    EXPECT_TRUE(contained_in_any(trial, rounds))
        << "bo_trial [" << trial.ts << ", " << trial.end()
        << ") outside every round";
  }
  // Each leg of the chain is exercised: some eval inside a BO trial, and
  // some episode inside that eval (evals also run in the scheme's select
  // phase, episodes also run in training rollout -- hence "some", not
  // "every").
  bool chain_found = false;
  for (const auto& eval : evals) {
    if (!contained_in_any(eval, trials)) continue;
    for (const auto& episode : episodes) {
      if (contained_in(episode, eval)) {
        chain_found = true;
        break;
      }
    }
    if (chain_found) break;
  }
  EXPECT_TRUE(chain_found)
      << "no round -> bo_trial -> eval -> episode containment chain";
  std::remove(path.c_str());
}

}  // namespace
