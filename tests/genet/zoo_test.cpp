#include "genet/zoo.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace {

using genet::ModelZoo;

class ZooTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("genet_zoo_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(ZooTest, PutGetRoundTripsExactly) {
  ModelZoo zoo(dir_.string());
  const std::vector<double> params{1.0, -2.5, 3.14159265358979,
                                   1e-17, 123456.789};
  zoo.put("abr-genet-seed1", params);
  EXPECT_TRUE(zoo.contains("abr-genet-seed1"));
  EXPECT_EQ(zoo.get("abr-genet-seed1"), params);
}

TEST_F(ZooTest, GetMissingKeyThrows) {
  ModelZoo zoo(dir_.string());
  EXPECT_FALSE(zoo.contains("nope"));
  EXPECT_THROW(zoo.get("nope"), std::runtime_error);
}

TEST_F(ZooTest, GetOrTrainInvokesTrainerOnlyOnce) {
  ModelZoo zoo(dir_.string());
  int calls = 0;
  auto trainer = [&]() {
    ++calls;
    return std::vector<double>{1.0, 2.0};
  };
  const auto first = zoo.get_or_train("key", trainer);
  const auto second = zoo.get_or_train("key", trainer);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(first, second);
}

TEST_F(ZooTest, KeysAreSanitizedForTheFilesystem) {
  ModelZoo zoo(dir_.string());
  zoo.put("weird key/with:chars", {1.0});
  EXPECT_TRUE(zoo.contains("weird key/with:chars"));
  EXPECT_EQ(zoo.get("weird key/with:chars"), std::vector<double>{1.0});
}

TEST_F(ZooTest, EmptyParameterVectorRoundTrips) {
  ModelZoo zoo(dir_.string());
  zoo.put("empty", {});
  EXPECT_TRUE(zoo.get("empty").empty());
}

TEST_F(ZooTest, EnvironmentVariableOverridesDirectory) {
  ::setenv("GENET_MODEL_DIR", dir_.string().c_str(), 1);
  ModelZoo zoo;  // default constructor reads the env var
  EXPECT_EQ(zoo.directory(), dir_.string());
  zoo.put("env-key", {4.2});
  EXPECT_TRUE(std::filesystem::exists(dir_ / "env-key.model"));
  ::unsetenv("GENET_MODEL_DIR");
}

}  // namespace
