// End-to-end integration tests: the full Genet loop (Algorithm 2) running
// against real task adapters, on budgets small enough for CI but large
// enough to exercise every moving part together (trainer, simulators,
// baselines, BO search, distribution promotion).

#include <gtest/gtest.h>

#include "genet/adapter.hpp"
#include "genet/curriculum.hpp"
#include "traces/tracesets.hpp"

namespace {

using genet::CurriculumOptions;
using genet::CurriculumTrainer;
using netgym::Rng;

genet::SearchOptions tiny_search() {
  genet::SearchOptions options;
  options.bo_trials = 5;
  options.envs_per_eval = 2;
  return options;
}

TEST(Integration, GenetEndToEndOnLb) {
  genet::LbAdapter adapter(1);
  CurriculumOptions options;
  options.rounds = 3;
  options.iters_per_round = 60;
  options.seed = 21;
  CurriculumTrainer genet_trainer(
      adapter, std::make_unique<genet::GenetScheme>("llf", tiny_search()),
      options);
  const auto records = genet_trainer.run();
  ASSERT_EQ(records.size(), 3u);

  // The Genet-trained policy must beat an untrained policy on the target
  // distribution.
  auto fresh = adapter.make_trainer(777);
  genet_trainer.policy().set_greedy(true);
  fresh->policy().set_greedy(true);
  netgym::ConfigDistribution target(adapter.space());
  Rng rng1(5), rng2(5);
  const double trained = genet::test_on_distribution(
      adapter, genet_trainer.policy(), target, 20, rng1);
  const double untrained = genet::test_on_distribution(
      adapter, fresh->policy(), target, 20, rng2);
  EXPECT_GT(trained, untrained);
}

TEST(Integration, GenetEndToEndOnAbrSmoke) {
  genet::AbrAdapter adapter(1);
  CurriculumOptions options;
  options.rounds = 2;
  options.iters_per_round = 3;
  options.seed = 4;
  CurriculumTrainer trainer(
      adapter, std::make_unique<genet::GenetScheme>("bba", tiny_search()),
      options);
  const auto records = trainer.run();
  EXPECT_EQ(records.size(), 2u);
  for (const auto& r : records) {
    EXPECT_TRUE(adapter.space().contains(r.promoted));
  }
}

TEST(Integration, GenetEndToEndOnCcSmoke) {
  genet::CcAdapter adapter(1);
  CurriculumOptions options;
  options.rounds = 2;
  options.iters_per_round = 3;
  options.seed = 4;
  CurriculumTrainer trainer(
      adapter, std::make_unique<genet::GenetScheme>("bbr", tiny_search()),
      options);
  const auto records = trainer.run();
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(trainer.distribution().num_promoted(), 2u);
}

TEST(Integration, TraceMixedTrainingRuns) {
  genet::TraceMixOptions mix;
  mix.corpus = traces::make_corpus(traces::TraceSet::kCellular, false);
  genet::CcAdapter adapter(1, std::move(mix));
  auto trainer = genet::train_traditional(adapter, 3, 9);
  ASSERT_NE(trainer, nullptr);
  // The trained policy runs on trace-driven test envs without issue.
  trainer->policy().set_greedy(true);
  Rng rng(2);
  std::vector<netgym::Trace> test_corpus;
  for (int i = 0; i < 3; ++i) {
    test_corpus.push_back(
        traces::make_trace(traces::TraceSet::kEthernet, true, i));
  }
  const auto rewards =
      genet::test_per_trace(adapter, trainer->policy(), test_corpus, rng);
  EXPECT_EQ(rewards.size(), 3u);
}

TEST(Integration, CurriculumDistributionStillCoversFullSpace) {
  // S4.2 "impact of forgetting": after all rounds, the original uniform
  // component retains enough mass that full-space envs keep appearing.
  genet::LbAdapter adapter(1);
  CurriculumOptions options;
  options.rounds = 4;
  options.iters_per_round = 1;
  options.seed = 31;
  CurriculumTrainer trainer(
      adapter, std::make_unique<genet::GenetScheme>("llf", tiny_search()),
      options);
  trainer.run();
  EXPECT_GT(trainer.distribution().uniform_weight(), 0.2);  // 0.7^4 = 0.24
}

}  // namespace
