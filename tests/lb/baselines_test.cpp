#include "lb/baselines.hpp"

#include <gtest/gtest.h>

namespace {

using lb::LbEnv;
using lb::LbEnvConfig;
using netgym::Rng;

LbEnvConfig busy_config(double shuffle = 0.0) {
  LbEnvConfig cfg;
  cfg.num_jobs = 300;
  cfg.job_interval_s = 0.05;  // noticeably loaded
  cfg.queue_shuffle_prob = shuffle;
  return cfg;
}

double run_policy(netgym::Policy& policy, const LbEnvConfig& cfg,
                  std::uint64_t seed) {
  LbEnv env(cfg, seed);
  Rng rng(seed);
  return netgym::run_episode(env, policy, rng).mean_reward;
}

TEST(Llf, PicksLeastLoadedDisplayedServer) {
  netgym::Observation obs(LbEnv::kObsSize, 0.0);
  for (int s = 0; s < lb::kNumServers; ++s) {
    obs[LbEnv::kObsWork + s] = 0.5 + s * 0.1;
  }
  obs[LbEnv::kObsWork + 5] = 0.01;
  lb::LlfPolicy llf;
  Rng rng(1);
  EXPECT_EQ(llf.act(obs, rng), 5);
}

TEST(Naive, PicksMostLoadedServer) {
  netgym::Observation obs(LbEnv::kObsSize, 0.0);
  obs[LbEnv::kObsWork + 2] = 3.0;
  lb::NaiveLbPolicy naive;
  Rng rng(1);
  EXPECT_EQ(naive.act(obs, rng), 2);
}

TEST(ShortestCompletion, TradesOffLoadAndSpeed) {
  netgym::Observation obs(LbEnv::kObsSize, 0.0);
  // Server 0: idle but very slow; server 7: slightly loaded but fast.
  obs[LbEnv::kObsRates + 0] = 0.01;  // 100 B/s
  obs[LbEnv::kObsRates + 7] = 1.0;   // 10 kB/s
  obs[LbEnv::kObsWork + 7] = 0.05;   // 0.5 s queued
  for (int s = 1; s < 7; ++s) {
    obs[LbEnv::kObsRates + s] = 0.02;
    obs[LbEnv::kObsWork + s] = 0.3;
  }
  obs[LbEnv::kObsJobSize] = 0.2;  // 2000 bytes
  lb::ShortestCompletionPolicy policy;
  Rng rng(1);
  // Completion at 0: 20 s; at 7: 0.5 + 0.2 s -> server 7 wins.
  EXPECT_EQ(policy.act(obs, rng), 7);
}

TEST(LeastRequests, UsesCountColumn) {
  netgym::Observation obs(LbEnv::kObsSize, 0.0);
  for (int s = 0; s < lb::kNumServers; ++s) {
    obs[LbEnv::kObsCount + s] = 0.5;
  }
  obs[LbEnv::kObsCount + 4] = 0.1;
  lb::LeastRequestsPolicy policy;
  Rng rng(1);
  EXPECT_EQ(policy.act(obs, rng), 4);
}

TEST(RandomLb, CoversAllServers) {
  lb::RandomLbPolicy policy;
  netgym::Observation obs(LbEnv::kObsSize, 0.0);
  Rng rng(3);
  std::vector<int> counts(lb::kNumServers, 0);
  for (int i = 0; i < 4000; ++i) ++counts[policy.act(obs, rng)];
  for (int s = 0; s < lb::kNumServers; ++s) EXPECT_GT(counts[s], 0);
}

TEST(PowerOfTwo, ValidatesAndStaysInRange) {
  EXPECT_THROW(lb::PowerOfTwoPolicy(0), std::invalid_argument);
  EXPECT_THROW(lb::PowerOfTwoPolicy(lb::kNumServers + 1),
               std::invalid_argument);
  lb::PowerOfTwoPolicy po2;
  netgym::Observation obs(LbEnv::kObsSize, 0.0);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const int a = po2.act(obs, rng);
    EXPECT_GE(a, 0);
    EXPECT_LT(a, lb::kNumServers);
  }
}

TEST(PowerOfTwo, DLimitEqualsLlf) {
  // With d == kNumServers every server is inspected, so JSQ(d) picks the
  // displayed least-loaded server, same as LLF (up to tie order).
  lb::PowerOfTwoPolicy full(lb::kNumServers);
  netgym::Observation obs(LbEnv::kObsSize, 0.0);
  for (int s = 0; s < lb::kNumServers; ++s) {
    obs[LbEnv::kObsWork + s] = 1.0 + s;
  }
  obs[LbEnv::kObsWork + 3] = 0.1;
  Rng rng(4);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(full.act(obs, rng), 3);
}

TEST(PowerOfTwo, BeatsRandomUnderLoad) {
  lb::PowerOfTwoPolicy po2;
  lb::RandomLbPolicy random;
  double r_po2 = 0, r_random = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    r_po2 += run_policy(po2, busy_config(), seed);
    r_random += run_policy(random, busy_config(), seed);
  }
  EXPECT_GT(r_po2, r_random);
}

TEST(Ranking, SensiblePoliciesBeatNaive) {
  const LbEnvConfig cfg = busy_config();
  lb::ShortestCompletionPolicy shortest;
  lb::LlfPolicy llf;
  lb::RandomLbPolicy random;
  lb::NaiveLbPolicy naive;
  double r_shortest = 0, r_llf = 0, r_random = 0, r_naive = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    r_shortest += run_policy(shortest, cfg, seed);
    r_llf += run_policy(llf, cfg, seed);
    r_random += run_policy(random, cfg, seed);
    r_naive += run_policy(naive, cfg, seed);
  }
  EXPECT_GT(r_llf, r_naive);
  EXPECT_GT(r_shortest, r_random);
  EXPECT_GT(r_llf, r_random);
}

TEST(OracleLb, AtLeastAsGoodAsObservationPoliciesUnderShuffle) {
  // With fully shuffled observations, obs-based policies degrade while the
  // oracle (reading true state) does not.
  const LbEnvConfig cfg = busy_config(/*shuffle=*/1.0);
  double r_oracle = 0, r_llf = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    {
      LbEnv env(cfg, seed);
      lb::OracleLbPolicy oracle(env);
      Rng rng(seed);
      r_oracle += netgym::run_episode(env, oracle, rng).mean_reward;
    }
    {
      LbEnv env(cfg, seed);
      lb::LlfPolicy llf;
      Rng rng(seed);
      r_llf += netgym::run_episode(env, llf, rng).mean_reward;
    }
  }
  EXPECT_GT(r_oracle, r_llf);
}

TEST(Shuffle, HurtsObservationBasedPolicies) {
  lb::ShortestCompletionPolicy policy;
  double clean = 0, shuffled = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    clean += run_policy(policy, busy_config(0.0), seed);
    shuffled += run_policy(policy, busy_config(1.0), seed);
  }
  EXPECT_GT(clean, shuffled);
}

}  // namespace
