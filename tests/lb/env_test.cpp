#include "lb/env.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using lb::LbEnv;
using lb::LbEnvConfig;
using netgym::Rng;

LbEnvConfig quiet_config() {
  LbEnvConfig cfg;
  cfg.num_jobs = 50;
  cfg.queue_shuffle_prob = 0.0;  // observations are truthful
  return cfg;
}

TEST(LbConfigSpace, MatchesTable5) {
  for (int which : {1, 2, 3}) {
    EXPECT_EQ(lb::lb_config_space(which).dims(), 5u);
  }
  const auto rl1 = lb::lb_config_space(1);
  const auto rl3 = lb::lb_config_space(3);
  for (std::size_t d = 0; d < rl1.dims(); ++d) {
    EXPECT_GE(rl1.param(d).lo, rl3.param(d).lo);
    EXPECT_LE(rl1.param(d).hi, rl3.param(d).hi);
  }
  EXPECT_THROW(lb::lb_config_space(0), std::invalid_argument);
}

TEST(LbConfigSpace, PointRoundTrip) {
  Rng rng(1);
  const auto space = lb::lb_config_space(3);
  const netgym::Config point = space.sample(rng);
  const netgym::Config back =
      lb::lb_point_from_config(lb::lb_config_from_point(point));
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(back.values[i], point.values[i]);
  }
}

TEST(LbEnv, ServerRatesFollowSpread) {
  LbEnv env(quiet_config(), 1);
  for (int i = 1; i < lb::kNumServers; ++i) {
    EXPECT_GT(env.server_rate_bytes_per_s(i), env.server_rate_bytes_per_s(i - 1));
  }
  EXPECT_THROW(env.server_rate_bytes_per_s(-1), std::out_of_range);
  EXPECT_THROW(env.server_rate_bytes_per_s(lb::kNumServers), std::out_of_range);
}

TEST(LbEnv, EpisodeLengthEqualsNumJobs) {
  LbEnv env(quiet_config(), 1);
  env.reset();
  int steps = 0;
  bool done = false;
  while (!done) {
    done = env.step(steps % lb::kNumServers).done;
    ++steps;
  }
  EXPECT_EQ(steps, 50);
  EXPECT_THROW(env.step(0), std::logic_error);
}

TEST(LbEnv, FirstJobDelayIsPureProcessing) {
  LbEnv env(quiet_config(), 1);
  env.reset();
  const double job = env.current_job_bytes();
  const int server = 3;
  const double expected = job / env.server_rate_bytes_per_s(server);
  const auto result = env.step(server);
  EXPECT_NEAR(result.reward, -expected, 1e-9);
}

TEST(LbEnv, PilingOntoOneServerGrowsDelay) {
  LbEnvConfig cfg = quiet_config();
  cfg.job_interval_s = 0.001;  // arrivals far faster than service
  LbEnv env(cfg, 2);
  env.reset();
  double last_reward = 0.0;
  bool grew = false;
  for (int i = 0; i < 20; ++i) {
    const double r = env.step(0).reward;
    if (i > 0 && r < last_reward) grew = true;
    last_reward = r;
  }
  EXPECT_TRUE(grew);
  EXPECT_GT(env.true_queued_work_s(0), 0.0);
  EXPECT_EQ(env.true_queued_work_s(1), 0.0);
}

TEST(LbEnv, QueuesDrainWhenIdle) {
  LbEnvConfig cfg = quiet_config();
  cfg.job_interval_s = 100.0;  // huge gaps between arrivals
  LbEnv env(cfg, 3);
  env.reset();
  env.step(0);
  // After one inter-arrival gap of ~100 s, any queued work has drained.
  EXPECT_EQ(env.true_queued_work_s(0), 0.0);
  EXPECT_EQ(env.true_queued_jobs(0), 0);
}

TEST(LbEnv, UnshuffledObservationMatchesTrueState) {
  LbEnv env(quiet_config(), 4);
  netgym::Observation obs = env.reset();
  for (int i = 0; i < 6; ++i) obs = env.step(i % lb::kNumServers).observation;
  for (int s = 0; s < lb::kNumServers; ++s) {
    EXPECT_NEAR(obs[LbEnv::kObsWork + s] * 10.0, env.true_queued_work_s(s),
                1e-9);
    EXPECT_NEAR(obs[LbEnv::kObsRates + s] * 10000.0,
                env.server_rate_bytes_per_s(s), 1e-9);
  }
  EXPECT_NEAR(obs[LbEnv::kObsJobSize] * 10000.0, env.current_job_bytes(),
              1e-9);
}

TEST(LbEnv, FullShuffleScramblesObservation) {
  LbEnvConfig cfg = quiet_config();
  cfg.queue_shuffle_prob = 1.0;
  LbEnv env(cfg, 5);
  netgym::Observation obs = env.reset();
  // Load one server heavily, then check the reported rate columns are a
  // permutation (the sorted multiset of rates is preserved).
  for (int i = 0; i < 5; ++i) obs = env.step(0).observation;
  std::vector<double> reported, truth;
  for (int s = 0; s < lb::kNumServers; ++s) {
    reported.push_back(obs[LbEnv::kObsRates + s] * 10000.0);
    truth.push_back(env.server_rate_bytes_per_s(s));
  }
  std::sort(reported.begin(), reported.end());
  std::sort(truth.begin(), truth.end());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(reported[i], truth[i], 1e-9);
  }
}

TEST(LbEnv, JobSizesFollowParetoScale) {
  LbEnvConfig cfg = quiet_config();
  cfg.job_size_bytes = 1000.0;
  cfg.num_jobs = 3000;
  LbEnv env(cfg, 6);
  env.reset();
  double min_seen = 1e18, sum = 0.0;
  for (int i = 0; i < 3000; ++i) {
    min_seen = std::min(min_seen, env.current_job_bytes());
    sum += env.current_job_bytes();
    if (env.step(0).done) break;
  }
  EXPECT_GE(min_seen, 1000.0);            // Pareto scale floor
  EXPECT_NEAR(sum / 3000, 2000.0, 300.0);  // shape-2 mean = 2 * scale
}

TEST(LbEnv, ValidatesConfigAndActions) {
  LbEnvConfig bad = quiet_config();
  bad.service_rate = 0.0;
  EXPECT_THROW(LbEnv(bad, 1), std::invalid_argument);
  LbEnv env(quiet_config(), 1);
  env.reset();
  EXPECT_THROW(env.step(-1), std::invalid_argument);
  EXPECT_THROW(env.step(lb::kNumServers), std::invalid_argument);
}

TEST(LbEnv, DeterministicGivenSeed) {
  LbEnv a(quiet_config(), 9);
  LbEnv b(quiet_config(), 9);
  a.reset();
  b.reset();
  for (int i = 0; i < 30; ++i) {
    const auto ra = a.step(i % lb::kNumServers);
    const auto rb = b.step(i % lb::kNumServers);
    EXPECT_EQ(ra.reward, rb.reward);
    EXPECT_EQ(ra.observation, rb.observation);
  }
}

}  // namespace
