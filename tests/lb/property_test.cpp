// Property tests for the LB simulator.

#include <gtest/gtest.h>

#include <cmath>

#include "lb/baselines.hpp"
#include "lb/env.hpp"

namespace {

using lb::LbEnv;
using netgym::Rng;

class LbEnvProperties : public ::testing::TestWithParam<int> {};

TEST_P(LbEnvProperties, InvariantsHoldUnderRandomPlay) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const netgym::ConfigSpace space = lb::lb_config_space(3);
  lb::LbEnvConfig cfg = lb::lb_config_from_point(space.sample(rng));
  cfg.num_jobs = std::min(cfg.num_jobs, 300.0);  // bound the sweep
  auto env = lb::make_lb_env(cfg, rng);

  netgym::Observation obs = env->reset();
  bool done = false;
  double reward_sum = 0.0;
  int steps = 0;
  while (!done) {
    for (double v : obs) {
      ASSERT_TRUE(std::isfinite(v));
      ASSERT_GE(v, 0.0);  // all LB features are non-negative
    }
    const auto result = env->step(rng.uniform_int(0, lb::kNumServers - 1));
    ASSERT_LE(result.reward, 0.0);  // reward is a negated delay
    ASSERT_TRUE(std::isfinite(result.reward));
    reward_sum += result.reward;
    obs = result.observation;
    done = result.done;
    ++steps;
  }
  EXPECT_EQ(steps, static_cast<int>(std::lround(cfg.num_jobs)));
  EXPECT_LE(reward_sum, 0.0);
  // True state is always consistent after the episode.
  for (int s = 0; s < lb::kNumServers; ++s) {
    EXPECT_GE(env->true_queued_work_s(s), 0.0);
    EXPECT_GE(env->true_queued_jobs(s), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, LbEnvProperties,
                         ::testing::Range(0, 20));

TEST(LbEnvProperty, OracleWeaklyDominatesRandomAcrossConfigs) {
  // The omniscient oracle should beat random assignment on virtually every
  // configuration; aggregated over several configs it must win clearly.
  Rng rng(99);
  const netgym::ConfigSpace space = lb::lb_config_space(3);
  double oracle_total = 0.0, random_total = 0.0;
  for (int c = 0; c < 8; ++c) {
    lb::LbEnvConfig cfg = lb::lb_config_from_point(space.sample(rng));
    cfg.num_jobs = std::min(cfg.num_jobs, 300.0);
    const std::uint64_t seed = 1000 + c;
    {
      LbEnv env(cfg, seed);
      lb::OracleLbPolicy oracle(env);
      Rng prng(1);
      oracle_total += netgym::run_episode(env, oracle, prng).mean_reward;
    }
    {
      LbEnv env(cfg, seed);
      lb::RandomLbPolicy random;
      Rng prng(1);
      random_total += netgym::run_episode(env, random, prng).mean_reward;
    }
  }
  EXPECT_GT(oracle_total, random_total);
}

}  // namespace
