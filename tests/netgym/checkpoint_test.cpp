// Contract tests of the durable-state layer (DESIGN.md S5d): the typed
// Snapshot store, the exact-bit double encoding, the versioned CRC file
// format with its atomic-rename crash safety, and the Serializable
// round-trip of every stateful component. Corrupted, truncated, and
// mismatched snapshots must be rejected with a CheckpointError *before* any
// component state is mutated.

#include "netgym/checkpoint.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bo/gp.hpp"
#include "bo/search.hpp"
#include "genet/adapter.hpp"
#include "genet/robustify.hpp"
#include "netgym/config.hpp"
#include "netgym/rng.hpp"
#include "nn/adam.hpp"
#include "nn/mlp.hpp"
#include "rl/rollout.hpp"
#include "rl/trainer.hpp"

namespace {

namespace ckpt = netgym::checkpoint;
using ckpt::CheckpointError;
using ckpt::Snapshot;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
}

/// Bit-exact double comparison (EXPECT_EQ fails for NaN, conflates +-0).
void expect_same_bits(double got, double want) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
            std::bit_cast<std::uint64_t>(want));
}

// ---------------------------------------------------------------- Snapshot

TEST(Snapshot, RoundTripsEveryEntryType) {
  Snapshot snap;
  snap.put_i64("a/i", -42);
  snap.put_u64("a/u", 18446744073709551615ull);
  snap.put_double("a/d", 3.141592653589793);
  snap.put_string("a/s", "hello world");
  snap.put_string("a/s2", std::string("line1\nline2\x01\xff", 13));
  snap.put_doubles("a/dv", {1.0, -2.5, 0.0});
  snap.put_i64s("a/iv", {-1, 0, 7});

  const Snapshot back = Snapshot::decode(snap.encode());
  EXPECT_EQ(back.get_i64("a/i"), -42);
  EXPECT_EQ(back.get_u64("a/u"), 18446744073709551615ull);
  expect_same_bits(back.get_double("a/d"), 3.141592653589793);
  EXPECT_EQ(back.get_string("a/s2"), std::string("line1\nline2\x01\xff", 13));
  EXPECT_EQ(back.get_doubles("a/dv"), (std::vector<double>{1.0, -2.5, 0.0}));
  EXPECT_EQ(back.get_i64s("a/iv"), (std::vector<std::int64_t>{-1, 0, 7}));
  EXPECT_EQ(back.size(), snap.size());
}

TEST(Snapshot, PreservesSpecialDoubleBitPatterns) {
  const double nan_payload =
      std::bit_cast<double>(std::uint64_t{0x7ff80000deadbeefull});
  const std::vector<double> specials{
      0.0,
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      nan_payload,
  };
  Snapshot snap;
  snap.put_doubles("specials", specials);
  snap.put_double("nan", nan_payload);
  const Snapshot back = Snapshot::decode(snap.encode());
  const std::vector<double>& got = back.get_doubles("specials");
  ASSERT_EQ(got.size(), specials.size());
  for (std::size_t i = 0; i < specials.size(); ++i) {
    expect_same_bits(got[i], specials[i]);
  }
  expect_same_bits(back.get_double("nan"), nan_payload);
}

TEST(Snapshot, EncodingIsDeterministicAndSorted) {
  Snapshot a;
  a.put_i64("z", 1);
  a.put_i64("a", 2);
  a.put_i64("m", 3);
  Snapshot b;
  b.put_i64("m", 3);
  b.put_i64("z", 1);
  b.put_i64("a", 2);
  EXPECT_EQ(a.encode(), b.encode());  // insertion order never matters
  EXPECT_EQ(a.keys(), (std::vector<std::string>{"a", "m", "z"}));
}

TEST(Snapshot, GettersThrowOnMissingKeyAndWrongType) {
  Snapshot snap;
  snap.put_i64("i", 1);
  EXPECT_THROW(snap.get_i64("absent"), CheckpointError);
  EXPECT_THROW(snap.get_double("i"), CheckpointError);
  EXPECT_THROW(snap.get_string("i"), CheckpointError);
  EXPECT_THROW(snap.get_doubles("i"), CheckpointError);
  EXPECT_FALSE(snap.has("absent"));
  EXPECT_TRUE(snap.has("i"));
}

TEST(Snapshot, RejectsKeysWithWhitespaceOrControlBytes) {
  Snapshot snap;
  EXPECT_THROW(snap.put_i64("", 1), std::invalid_argument);
  EXPECT_THROW(snap.put_i64("a b", 1), std::invalid_argument);
  EXPECT_THROW(snap.put_i64("a\tb", 1), std::invalid_argument);
  EXPECT_THROW(snap.put_i64("a\nb", 1), std::invalid_argument);
  EXPECT_THROW(snap.put_i64(std::string("a\x01") + "b", 1),
               std::invalid_argument);
}

TEST(Snapshot, DecodeRejectsMalformedPayloads) {
  EXPECT_THROW(Snapshot::decode("k i 1"), CheckpointError);  // no newline
  EXPECT_THROW(Snapshot::decode("\n"), CheckpointError);     // blank line
  EXPECT_THROW(Snapshot::decode("k i 1\nk i 2\n"), CheckpointError);  // dup
  EXPECT_THROW(Snapshot::decode("k x 1\n"), CheckpointError);  // bad type
  EXPECT_THROW(Snapshot::decode("k i one\n"), CheckpointError);
  EXPECT_THROW(Snapshot::decode("k u -1\n"), CheckpointError);
  EXPECT_THROW(Snapshot::decode("k d 123\n"), CheckpointError);  // short hex
  EXPECT_THROW(Snapshot::decode("k d 400921fb54442d1g\n"), CheckpointError);
  EXPECT_THROW(Snapshot::decode("k dv 2 0000000000000000\n"),
               CheckpointError);  // count mismatch
  EXPECT_THROW(Snapshot::decode("k iv 1 1 2\n"), CheckpointError);
  EXPECT_THROW(Snapshot::decode("k s 3 61\n"), CheckpointError);  // short str
  EXPECT_THROW(Snapshot::decode("k\n"), CheckpointError);
}

// ------------------------------------------------------------- file format

TEST(CheckpointFile, Crc32MatchesTheZlibCheckValue) {
  // The canonical CRC-32 test vector; Python's zlib.crc32 agrees, which is
  // what scripts/check_checkpoint.py relies on.
  EXPECT_EQ(ckpt::crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(ckpt::crc32(""), 0x00000000u);
}

TEST(CheckpointFile, WriteReadRoundTripsAndCleansUpTempFile) {
  const std::string path = temp_path("roundtrip.ckpt");
  Snapshot snap;
  snap.put_doubles("w", {1.5, -0.0, 2.25});
  snap.put_string("name", "trial");
  ckpt::write_file(snap, path);

  EXPECT_FALSE(std::ifstream(path + ".tmp").good());  // temp renamed away
  const std::string contents = slurp(path);
  EXPECT_EQ(contents.rfind("genet-checkpoint 1\n", 0), 0u) << contents;

  const Snapshot back = ckpt::read_file(path);
  EXPECT_EQ(back.get_doubles("w"), snap.get_doubles("w"));
  EXPECT_EQ(back.get_string("name"), "trial");
  std::remove(path.c_str());
}

TEST(CheckpointFile, RejectsMissingCorruptedTruncatedAndWrongVersionFiles) {
  const std::string path = temp_path("defects.ckpt");
  Snapshot snap;
  snap.put_doubles("params", {1.0, 2.0, 3.0});
  ckpt::write_file(snap, path);
  const std::string good = slurp(path);

  EXPECT_THROW(ckpt::read_file(temp_path("no_such.ckpt")), CheckpointError);

  // Flip one payload byte: CRC must catch it.
  std::string corrupted = good;
  corrupted[corrupted.size() - 2] ^= 0x20;
  spit(path, corrupted);
  EXPECT_THROW(ckpt::read_file(path), CheckpointError);

  // Truncate mid-payload: length check must catch it.
  spit(path, good.substr(0, good.size() - 7));
  EXPECT_THROW(ckpt::read_file(path), CheckpointError);

  // Unsupported future schema version.
  std::string future = good;
  future.replace(future.find(" 1\n"), 3, " 99\n");
  spit(path, future);
  EXPECT_THROW(ckpt::read_file(path), CheckpointError);

  // Not a checkpoint at all.
  spit(path, "not a checkpoint\n");
  EXPECT_THROW(ckpt::read_file(path), CheckpointError);
  spit(path, "");
  EXPECT_THROW(ckpt::read_file(path), CheckpointError);
  std::remove(path.c_str());
}

TEST(CheckpointFile, AtomicRenameLeavesPriorSnapshotAfterMidWriteKill) {
  const std::string path = temp_path("atomic.ckpt");
  Snapshot first;
  first.put_i64("generation", 1);
  ckpt::write_file(first, path);

  // Simulate a process killed mid-write: a half-written temp file next to
  // the real snapshot. The prior snapshot must stay fully readable, and the
  // next successful save must atomically supersede both.
  spit(path + ".tmp", "genet-checkpoint 1\npayload 999 crc32 0000");
  EXPECT_EQ(ckpt::read_file(path).get_i64("generation"), 1);

  Snapshot second;
  second.put_i64("generation", 2);
  ckpt::write_file(second, path);
  EXPECT_EQ(ckpt::read_file(path).get_i64("generation"), 2);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(CheckpointFile, FailedWriteLeavesNoFileBehind) {
  const std::string path = temp_path("no_such_dir/x.ckpt");
  Snapshot snap;
  snap.put_i64("k", 1);
  EXPECT_THROW(ckpt::write_file(snap, path), CheckpointError);
  EXPECT_FALSE(std::ifstream(path).good());
}

// ------------------------------------------------- Serializable round trips

/// Round-trip through an encoded snapshot and assert the re-saved state is
/// byte-identical -- the strongest form of "nothing was lost".
template <typename T>
void expect_state_round_trips(const T& source, T& target,
                              const std::string& prefix = "x/") {
  Snapshot saved;
  source.save_state(saved, prefix);
  target.load_state(Snapshot::decode(saved.encode()), prefix);
  Snapshot resaved;
  target.save_state(resaved, prefix);
  EXPECT_EQ(resaved.encode(), saved.encode());
}

TEST(SerializableRoundTrip, MlpRestoresExactParameterBits) {
  netgym::Rng rng(3);
  nn::Mlp source({4, 8, 3}, nn::Activation::kTanh, rng);
  source.params()[0] = -0.0;
  source.params()[1] = std::numeric_limits<double>::denorm_min();
  nn::Mlp target({4, 8, 3}, nn::Activation::kTanh, rng);
  expect_state_round_trips(source, target);
  for (std::size_t i = 0; i < source.params().size(); ++i) {
    expect_same_bits(target.params()[i], source.params()[i]);
  }
}

TEST(SerializableRoundTrip, MlpRejectsTopologyMismatchWithoutMutating) {
  netgym::Rng rng(3);
  nn::Mlp source({4, 8, 3}, nn::Activation::kTanh, rng);
  Snapshot snap;
  source.save_state(snap, "m/");

  nn::Mlp wrong_sizes({4, 6, 3}, nn::Activation::kTanh, rng);
  const std::vector<double> before = wrong_sizes.params();
  EXPECT_THROW(wrong_sizes.load_state(snap, "m/"), CheckpointError);
  EXPECT_EQ(wrong_sizes.params(), before);

  nn::Mlp wrong_act({4, 8, 3}, nn::Activation::kRelu, rng);
  const std::vector<double> before_act = wrong_act.params();
  EXPECT_THROW(wrong_act.load_state(snap, "m/"), CheckpointError);
  EXPECT_EQ(wrong_act.params(), before_act);

  EXPECT_THROW(source.load_state(snap, "other/"), CheckpointError);
}

TEST(SerializableRoundTrip, AdamRestoresMomentsStepAndLearningRate) {
  nn::Adam source(6, {.lr = 5e-3});
  std::vector<double> params(6, 1.0);
  const std::vector<double> grads{0.1, -0.2, 0.3, -0.4, 0.5, -0.6};
  source.step(params, grads);
  source.step(params, grads);
  source.set_learning_rate(1e-4);

  nn::Adam target(6);
  expect_state_round_trips(source, target);

  // The restored optimizer must continue the exact same trajectory.
  std::vector<double> params_a = params;
  std::vector<double> params_b = params;
  source.step(params_a, grads);
  target.step(params_b, grads);
  EXPECT_EQ(params_a, params_b);

  nn::Adam mismatched(7);
  Snapshot snap;
  source.save_state(snap, "o/");
  EXPECT_THROW(mismatched.load_state(snap, "o/"), CheckpointError);
}

TEST(SerializableRoundTrip, RunningNormRestoresWelfordState) {
  rl::RunningNorm source;
  for (double x : {1.0, 4.0, -2.0, 8.5}) source.update(x);
  rl::RunningNorm target;
  expect_state_round_trips(source, target);
  EXPECT_EQ(target.count(), source.count());
  expect_same_bits(target.mean(), source.mean());
  expect_same_bits(target.stddev(), source.stddev());
}

TEST(SerializableRoundTrip, RngStateRestoresExactStream) {
  netgym::Rng source(99);
  for (int i = 0; i < 17; ++i) source.uniform(0, 1);
  netgym::Rng target(0);
  target.set_state(source.state());
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(target.engine()(), source.engine()());
  }
  // Malformed state throws without perturbing the current stream.
  netgym::Rng untouched(7);
  const std::string before = untouched.state();
  EXPECT_THROW(untouched.set_state("definitely not an engine"),
               std::invalid_argument);
  EXPECT_EQ(untouched.state(), before);
}

TEST(SerializableRoundTrip, ConfigDistributionRestoresMixture) {
  netgym::ConfigSpace space({{"a", 0.0, 10.0}, {"b", 1.0, 2.0}});
  netgym::ConfigDistribution source(space);
  source.promote(netgym::Config{{3.0, 1.5}}, 0.3);
  source.promote(netgym::Config{{7.0, 1.25}}, 0.2);

  netgym::ConfigDistribution target(space);
  expect_state_round_trips(source, target);
  EXPECT_EQ(target.uniform_weight(), source.uniform_weight());
  ASSERT_EQ(target.num_promoted(), 2u);
  EXPECT_EQ(target.promoted()[1].first.values,
            source.promoted()[1].first.values);

  // Arity mismatch against a different space must be rejected untouched.
  netgym::ConfigSpace other_space({{"a", 0.0, 10.0}});
  netgym::ConfigDistribution other(other_space);
  Snapshot snap;
  source.save_state(snap, "d/");
  EXPECT_THROW(other.load_state(snap, "d/"), CheckpointError);
  EXPECT_EQ(other.num_promoted(), 0u);
}

TEST(SerializableRoundTrip, GaussianProcessPredictsIdenticallyAfterReload) {
  bo::GaussianProcess source;
  source.fit({{0.1, 0.2}, {0.8, 0.5}, {0.4, 0.9}}, {1.0, -0.5, 2.0});
  bo::GaussianProcess target;
  expect_state_round_trips(source, target);
  const auto a = source.predict({0.3, 0.3});
  const auto b = target.predict({0.3, 0.3});
  expect_same_bits(b.mean, a.mean);
  expect_same_bits(b.variance, a.variance);

  // An unfitted GP round-trips too (n = 0).
  bo::GaussianProcess empty_src, empty_dst;
  expect_state_round_trips(empty_src, empty_dst);
  EXPECT_FALSE(empty_dst.fitted());
}

TEST(SerializableRoundTrip, BayesianOptimizerProposesIdenticallyAfterReload) {
  bo::BayesianOptimizer source(2, 42);
  netgym::Rng rng(1);
  for (int t = 0; t < 5; ++t) {
    const std::vector<double> x = source.propose();
    source.update(x, rng.uniform(-1, 1));
  }
  bo::BayesianOptimizer target(2, 7);  // different seed: state must win
  expect_state_round_trips(source, target);
  EXPECT_EQ(target.best_point(), source.best_point());
  EXPECT_EQ(target.best_value(), source.best_value());
  EXPECT_EQ(target.propose(), source.propose());

  bo::BayesianOptimizer wrong_dims(3, 42);
  Snapshot snap;
  source.save_state(snap, "bo/");
  EXPECT_THROW(wrong_dims.load_state(snap, "bo/"), CheckpointError);
  EXPECT_EQ(wrong_dims.num_evaluations(), 0);
}

TEST(SerializableRoundTrip, TrainerResumesExactTrajectory) {
  genet::LbAdapter adapter(1);
  netgym::ConfigDistribution dist(adapter.space());
  const rl::EnvFactory factory = adapter.factory_for(dist);

  auto source = adapter.make_trainer(21);
  source->train_iteration(factory);
  source->train_iteration(factory);
  EXPECT_EQ(source->iterations(), 2);

  auto target = adapter.make_trainer(77);  // different seed: state must win
  expect_state_round_trips(*source, *target, "trainer/");
  EXPECT_EQ(target->iterations(), 2);

  // Continuing both trainers yields bit-identical parameters.
  source->train_iteration(factory);
  target->train_iteration(factory);
  EXPECT_EQ(target->snapshot(), source->snapshot());
}

TEST(SerializableRoundTrip, TrainerRejectsMismatchedSnapshotWithoutMutating) {
  genet::LbAdapter lb(1);
  genet::AbrAdapter abr(1);  // different obs/action topology
  auto source = lb.make_trainer(21);
  Snapshot snap;
  source->save_state(snap, "t/");

  auto victim = abr.make_trainer(5);
  Snapshot before;
  victim->save_state(before, "t/");
  EXPECT_THROW(victim->load_state(snap, "t/"), CheckpointError);
  Snapshot after;
  victim->save_state(after, "t/");
  EXPECT_EQ(after.encode(), before.encode());  // fully untouched

  // A snapshot with a corrupted RNG string must also leave the trainer
  // untouched, even though every shape matches.
  Snapshot bad_rng;
  source->save_state(bad_rng, "t/");
  bad_rng.put_string("t/rng", "not an engine state");
  auto twin = lb.make_trainer(21);
  Snapshot twin_before;
  twin->save_state(twin_before, "t/");
  EXPECT_THROW(twin->load_state(bad_rng, "t/"), CheckpointError);
  Snapshot twin_after;
  twin->save_state(twin_after, "t/");
  EXPECT_EQ(twin_after.encode(), twin_before.encode());
}

TEST(SerializableRoundTrip, AbrAdversaryRestoresGeneratorTrainer) {
  netgym::Rng init(4);
  rl::TrainerOptions defaults;
  genet::AbrAdapter adapter(1);
  rl::MlpPolicy victim(adapter.obs_size(), adapter.action_count(),
                       defaults.hidden, init);
  genet::RobustifyOptions options;
  options.adversary_iters = 1;
  genet::AbrAdversary source(victim, options, 11);
  source.train();
  genet::AbrAdversary target(victim, options, 99);
  expect_state_round_trips(source, target, "adv/");
  EXPECT_EQ(target.last_objective(), source.last_objective());
}

}  // namespace
