#include "netgym/config.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using netgym::Config;
using netgym::ConfigDistribution;
using netgym::ConfigSpace;
using netgym::ParamSpec;
using netgym::Rng;

ConfigSpace demo_space() {
  return ConfigSpace({ParamSpec{"bw", 1.0, 10.0},
                      ParamSpec{"rtt", 20.0, 200.0},
                      ParamSpec{"queue", 2.0, 50.0, /*integer=*/true}});
}

TEST(ConfigSpace, RejectsInvertedRange) {
  EXPECT_THROW(ConfigSpace({ParamSpec{"x", 2.0, 1.0}}),
               std::invalid_argument);
}

TEST(ConfigSpace, IndexOfFindsAndThrows) {
  const ConfigSpace space = demo_space();
  EXPECT_EQ(space.index_of("rtt"), 1u);
  EXPECT_THROW(space.index_of("nope"), std::invalid_argument);
}

TEST(ConfigSpace, SampleStaysInsideAndRoundsIntegers) {
  const ConfigSpace space = demo_space();
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const Config c = space.sample(rng);
    ASSERT_TRUE(space.contains(c));
    const double q = c.values[2];
    EXPECT_EQ(q, std::round(q));
  }
}

TEST(ConfigSpace, MidpointIsCentered) {
  const ConfigSpace space = demo_space();
  const Config mid = space.midpoint();
  EXPECT_DOUBLE_EQ(mid.values[0], 5.5);
  EXPECT_DOUBLE_EQ(mid.values[1], 110.0);
  EXPECT_EQ(mid.values[2], 26.0);
}

TEST(ConfigSpace, MidpointIsGeometricForLogScaleDims) {
  // A log-scale dim's midpoint is the geometric center (the point that
  // normalizes to 0.5), not the arithmetic one; integer log dims round it.
  const ConfigSpace space(
      {ParamSpec{"bw", 2.0, 1000.0, /*integer=*/false, /*log_scale=*/true},
       ParamSpec{"jobs", 10.0, 1000.0, /*integer=*/true, /*log_scale=*/true}});
  const Config mid = space.midpoint();
  EXPECT_NEAR(mid.values[0], std::sqrt(2.0 * 1000.0), 1e-9);
  EXPECT_EQ(mid.values[1], 100.0);
  EXPECT_NEAR(space.normalize(mid)[0], 0.5, 1e-12);
}

TEST(ConfigSpace, MidpointMatchesDenormalizeOfCenter) {
  // midpoint() and denormalize(0.5^d) must be the same point, so schedule
  // code interpolating in normalized space agrees with midpoint-based code.
  const ConfigSpace space(
      {ParamSpec{"lin", 1.0, 9.0},
       ParamSpec{"log", 0.01, 1.0, false, true},
       ParamSpec{"int", 2.0, 50.0, true},
       ParamSpec{"fixed", 5.0, 5.0}});
  const Config mid = space.midpoint();
  const Config center = space.denormalize({0.5, 0.5, 0.5, 0.5});
  ASSERT_EQ(mid.values.size(), center.values.size());
  for (std::size_t d = 0; d < mid.values.size(); ++d) {
    EXPECT_DOUBLE_EQ(mid.values[d], center.values[d]) << "dim " << d;
  }
  EXPECT_DOUBLE_EQ(mid.values[3], 5.0);  // degenerate dim pins to its value
}

TEST(ConfigSpace, NormalizeDenormalizeRoundTrips) {
  const ConfigSpace space = demo_space();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Config c = space.sample(rng);
    const Config back = space.denormalize(space.normalize(c));
    for (std::size_t d = 0; d < c.values.size(); ++d) {
      EXPECT_NEAR(back.values[d], c.values[d], 1e-9) << "dim " << d;
    }
  }
}

TEST(ConfigSpace, DenormalizeClampsUnitCoordinates) {
  const ConfigSpace space = demo_space();
  const Config lo = space.denormalize({-1.0, -0.5, -2.0});
  const Config hi = space.denormalize({2.0, 1.5, 3.0});
  EXPECT_DOUBLE_EQ(lo.values[0], 1.0);
  EXPECT_DOUBLE_EQ(hi.values[0], 10.0);
  EXPECT_DOUBLE_EQ(lo.values[1], 20.0);
  EXPECT_DOUBLE_EQ(hi.values[1], 200.0);
}

TEST(ConfigSpace, NormalizeDegenerateDimensionMapsToHalf) {
  const ConfigSpace space({ParamSpec{"fixed", 5.0, 5.0}});
  EXPECT_DOUBLE_EQ(space.normalize(Config{{5.0}})[0], 0.5);
}

TEST(ConfigSpace, ClampPullsValuesIntoRange) {
  const ConfigSpace space = demo_space();
  const Config c = space.clamp(Config{{-5.0, 500.0, 7.4}});
  EXPECT_DOUBLE_EQ(c.values[0], 1.0);
  EXPECT_DOUBLE_EQ(c.values[1], 200.0);
  EXPECT_EQ(c.values[2], 7.0);  // integer dim rounds
}

TEST(ConfigSpace, ContainsRejectsWrongArity) {
  EXPECT_FALSE(demo_space().contains(Config{{1.0}}));
}

TEST(ConfigSpaceLog, RejectsNonPositiveLowerBound) {
  EXPECT_THROW(ConfigSpace({ParamSpec{"bw", 0.0, 10.0, false, true}}),
               std::invalid_argument);
}

TEST(ConfigSpaceLog, SamplesWithGeometricMedian) {
  // Log-uniform sampling over [1, 100]: the median is the geometric mean 10,
  // not the arithmetic midpoint 50.5.
  const ConfigSpace space({ParamSpec{"bw", 1.0, 100.0, false, true}});
  Rng rng(5);
  int below_geo = 0, below_arith = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = space.sample(rng).values[0];
    ASSERT_GE(v, 1.0);
    ASSERT_LE(v, 100.0);
    if (v < 10.0) ++below_geo;
    if (v < 50.5) ++below_arith;
  }
  EXPECT_NEAR(below_geo / static_cast<double>(n), 0.5, 0.02);
  EXPECT_GT(below_arith / static_cast<double>(n), 0.8);
}

TEST(ConfigSpaceLog, MidpointIsGeometric) {
  const ConfigSpace space({ParamSpec{"bw", 1.0, 100.0, false, true}});
  EXPECT_NEAR(space.midpoint().values[0], 10.0, 1e-9);
}

TEST(ConfigSpaceLog, NormalizeDenormalizeRoundTripsInLogSpace) {
  const ConfigSpace space({ParamSpec{"bw", 2.0, 1000.0, false, true},
                           ParamSpec{"lin", 0.0, 1.0}});
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Config c = space.sample(rng);
    const Config back = space.denormalize(space.normalize(c));
    EXPECT_NEAR(back.values[0], c.values[0], 1e-6 * c.values[0]);
    EXPECT_NEAR(back.values[1], c.values[1], 1e-9);
  }
  // Unit coordinate 0.5 lands on the geometric mean for the log dim.
  EXPECT_NEAR(space.denormalize({0.5, 0.5}).values[0],
              std::sqrt(2.0 * 1000.0), 1e-6);
}

TEST(ConfigDistribution, InitiallyUniform) {
  ConfigDistribution dist(demo_space());
  EXPECT_DOUBLE_EQ(dist.uniform_weight(), 1.0);
  EXPECT_EQ(dist.num_promoted(), 0u);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(dist.space().contains(dist.sample(rng)));
  }
}

TEST(ConfigDistribution, PromoteScalesWeights) {
  ConfigDistribution dist(demo_space());
  const Config point{{2.0, 30.0, 4.0}};
  dist.promote(point, 0.3);
  EXPECT_NEAR(dist.uniform_weight(), 0.7, 1e-12);
  dist.promote(point, 0.3);
  EXPECT_NEAR(dist.uniform_weight(), 0.49, 1e-12);
  EXPECT_EQ(dist.num_promoted(), 2u);
  // First promoted point's weight decayed from 0.3 to 0.21.
  EXPECT_NEAR(dist.promoted()[0].second, 0.21, 1e-12);
  EXPECT_NEAR(dist.promoted()[1].second, 0.3, 1e-12);
}

TEST(ConfigDistribution, AfterNineRoundsOriginalWeightMatchesPaper) {
  // S4.2: after 9 promotions with w = 0.3 the original distribution still
  // holds 0.7^9 of the probability mass.
  ConfigDistribution dist(demo_space());
  const Config point{{2.0, 30.0, 4.0}};
  for (int i = 0; i < 9; ++i) dist.promote(point, 0.3);
  EXPECT_NEAR(dist.uniform_weight(), std::pow(0.7, 9), 1e-12);
}

TEST(ConfigDistribution, SamplesPromotedPointAtExpectedFrequency) {
  ConfigDistribution dist(demo_space());
  const Config point{{2.0, 30.0, 4.0}};
  dist.promote(point, 0.3);
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (dist.sample(rng) == point) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(ConfigDistribution, PromoteValidatesArguments) {
  ConfigDistribution dist(demo_space());
  EXPECT_THROW(dist.promote(Config{{1.0}}, 0.3), std::invalid_argument);
  EXPECT_THROW(dist.promote(Config{{2.0, 30.0, 4.0}}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(dist.promote(Config{{2.0, 30.0, 4.0}}, 1.0),
               std::invalid_argument);
}

TEST(ConfigDistribution, PromotedPointsAreClampedToSpace) {
  ConfigDistribution dist(demo_space());
  dist.promote(Config{{100.0, 0.0, 7.2}}, 0.5);
  const Config& stored = dist.promoted()[0].first;
  EXPECT_TRUE(dist.space().contains(stored));
}

}  // namespace
