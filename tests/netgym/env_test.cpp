#include "netgym/env.hpp"

#include <gtest/gtest.h>

namespace {

using netgym::Env;
using netgym::Observation;
using netgym::Policy;
using netgym::Rng;

/// Counts down `length` steps; reward equals the action taken.
class CountdownEnv : public Env {
 public:
  explicit CountdownEnv(int length) : length_(length) {}

  Observation reset() override {
    remaining_ = length_;
    return {static_cast<double>(remaining_)};
  }

  StepResult step(int action) override {
    if (remaining_ <= 0) throw std::logic_error("step after done");
    --remaining_;
    return {{static_cast<double>(remaining_)}, static_cast<double>(action),
            remaining_ == 0};
  }

  int action_count() const override { return 3; }
  std::size_t observation_size() const override { return 1; }

 private:
  int length_;
  int remaining_ = 0;
};

class FixedPolicy : public Policy {
 public:
  explicit FixedPolicy(int action) : action_(action) {}
  int act(const Observation&, Rng&) override { return action_; }

 private:
  int action_;
};

TEST(RunEpisode, AccumulatesRewardAndSteps) {
  CountdownEnv env(5);
  FixedPolicy policy(2);
  Rng rng(1);
  const netgym::EpisodeStats stats = netgym::run_episode(env, policy, rng);
  EXPECT_EQ(stats.steps, 5);
  EXPECT_DOUBLE_EQ(stats.total_reward, 10.0);
  EXPECT_DOUBLE_EQ(stats.mean_reward, 2.0);
}

TEST(RunEpisode, HonorsMaxSteps) {
  CountdownEnv env(100);
  FixedPolicy policy(1);
  Rng rng(1);
  const netgym::EpisodeStats stats =
      netgym::run_episode(env, policy, rng, /*max_steps=*/10);
  EXPECT_EQ(stats.steps, 10);
}

TEST(RunEpisode, RejectsInvalidActions) {
  CountdownEnv env(5);
  FixedPolicy policy(7);  // out of range for action_count() == 3
  Rng rng(1);
  EXPECT_THROW(netgym::run_episode(env, policy, rng), std::logic_error);
}

TEST(RunEpisode, RejectsNonPositiveMaxSteps) {
  CountdownEnv env(5);
  FixedPolicy policy(0);
  Rng rng(1);
  EXPECT_THROW(netgym::run_episode(env, policy, rng, 0),
               std::invalid_argument);
}

/// begin_episode must be called exactly once per episode.
TEST(RunEpisode, CallsBeginEpisode) {
  class CountingPolicy : public Policy {
   public:
    void begin_episode() override { ++episodes; }
    int act(const Observation&, Rng&) override { return 0; }
    int episodes = 0;
  };
  CountdownEnv env(3);
  CountingPolicy policy;
  Rng rng(1);
  netgym::run_episode(env, policy, rng);
  netgym::run_episode(env, policy, rng);
  EXPECT_EQ(policy.episodes, 2);
}

}  // namespace
