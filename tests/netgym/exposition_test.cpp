// Metrics exposition tests (DESIGN.md S5j): the Prometheus text rendering
// must follow the exposition grammar (sanitized names, TYPE lines, summary
// quantiles), and the live endpoint must answer a real localhost GET with
// that rendering over HTTP. The endpoint is read-only and observational, so
// none of this touches training or serving state.

#include "netgym/exposition.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "netgym/telemetry.hpp"

namespace {

namespace telemetry = netgym::telemetry;

telemetry::Registry::Entry counter_entry(const std::string& name, double v) {
  telemetry::Registry::Entry e;
  e.name = name;
  e.kind = telemetry::Registry::Kind::kCounter;
  e.value = v;
  return e;
}

TEST(Exposition, CounterAndGaugeRenderWithSanitizedNames) {
  telemetry::Registry::Entry gauge;
  gauge.name = "serve.uptime-s";
  gauge.kind = telemetry::Registry::Kind::kGauge;
  gauge.value = 12.5;
  const std::string text = telemetry::render_prometheus(
      {counter_entry("dist.trace_spans_shipped", 42.0), gauge});
  EXPECT_NE(text.find("# TYPE dist_trace_spans_shipped counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("dist_trace_spans_shipped 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_uptime_s gauge\n"), std::string::npos);
  EXPECT_NE(text.find("serve_uptime_s 12.5\n"), std::string::npos);
}

TEST(Exposition, HistogramRendersAsSummaryWithQuantiles) {
  telemetry::Registry::Entry hist;
  hist.name = "serve.phase.total_s";
  hist.kind = telemetry::Registry::Kind::kHistogram;
  // Dyadic values render exactly under the %.17g shortest-round-trip
  // formatting, so the expectations can be literal substrings.
  hist.hist.count = 100;
  hist.hist.sum = 5.0;
  hist.hist.p50 = 0.03125;
  hist.hist.p90 = 0.0625;
  hist.hist.p99 = 0.125;
  hist.hist.p999 = 0.25;
  const std::string text = telemetry::render_prometheus({hist});
  EXPECT_NE(text.find("# TYPE serve_phase_total_s summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_phase_total_s{quantile=\"0.5\"} 0.03125\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_phase_total_s{quantile=\"0.99\"} 0.125\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_phase_total_s_sum 5\n"), std::string::npos);
  EXPECT_NE(text.find("serve_phase_total_s_count 100\n"), std::string::npos);
}

TEST(Exposition, NonFiniteAndHugeValuesRenderSafely) {
  // NaN/Inf gauges must come out as the Prometheus spellings (and must not
  // hit the integer fast path, whose double->i64 cast would be undefined
  // for them); finite values beyond i64 range take the %g branch.
  const double inf = std::numeric_limits<double>::infinity();
  const std::string text = telemetry::render_prometheus(
      {counter_entry("m_nan", std::nan("")), counter_entry("m_pinf", inf),
       counter_entry("m_ninf", -inf), counter_entry("m_huge", 1e300)});
  EXPECT_NE(text.find("m_nan NaN\n"), std::string::npos);
  EXPECT_NE(text.find("m_pinf +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("m_ninf -Inf\n"), std::string::npos);
  EXPECT_NE(text.find("e+300\n"), std::string::npos);
}

TEST(Exposition, EmptyHistogramOmitsQuantileSamples) {
  telemetry::Registry::Entry hist;
  hist.name = "x";
  hist.kind = telemetry::Registry::Kind::kHistogram;
  const std::string text = telemetry::render_prometheus({hist});
  EXPECT_EQ(text.find("quantile"), std::string::npos);
  EXPECT_NE(text.find("x_count 0\n"), std::string::npos);
}

/// Plain blocking HTTP GET against 127.0.0.1:`port`; returns the full
/// response (status line + headers + body).
std::string http_get(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(Exposition, LiveEndpointServesRegistrySnapshotOverHttp) {
  telemetry::Registry::instance().counter("exposition_test.hits").add(7);
  telemetry::MetricsEndpoint endpoint;
  endpoint.start(0);  // ephemeral port
  ASSERT_TRUE(endpoint.running());
  ASSERT_GT(endpoint.port(), 0);

  const std::string response = http_get(endpoint.port());
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("# TYPE exposition_test_hits counter"),
            std::string::npos);
  EXPECT_NE(response.find("exposition_test_hits 7"), std::string::npos);

  // Multiple sequential scrapes must all be answered (the accept loop keeps
  // serving, one request per connection).
  EXPECT_NE(http_get(endpoint.port()).find("200 OK"), std::string::npos);

  endpoint.stop();
  EXPECT_FALSE(endpoint.running());
  endpoint.stop();  // idempotent
}

TEST(Exposition, StalledClientCannotWedgeTheEndpoint) {
  telemetry::MetricsEndpoint endpoint;
  endpoint.start(0);
  // Connect and send nothing: without SO_RCVTIMEO on the accepted socket
  // this parked the single serving thread in read() forever, starving every
  // later scrape and hanging stop() in thread_.join().
  const int stalled = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(stalled, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(endpoint.port()));
  ASSERT_EQ(
      ::connect(stalled, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      0);
  // A well-behaved scrape queued behind the stalled one must still be
  // answered (after the ~2s receive timeout expires), and stop() must
  // return rather than hang.
  EXPECT_NE(http_get(endpoint.port()).find("200 OK"), std::string::npos);
  endpoint.stop();
  EXPECT_FALSE(endpoint.running());
  ::close(stalled);
}

TEST(Exposition, StartRejectsUnbindablePort) {
  telemetry::MetricsEndpoint a;
  a.start(0);
  telemetry::MetricsEndpoint b;
  EXPECT_THROW(b.start(a.port()), std::runtime_error);
  a.stop();
}

}  // namespace
