#include "netgym/flight.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "netgym/parallel.hpp"

namespace {

namespace flight = netgym::flight;

/// Disables the recorder, clears retained episodes, and removes the dump
/// file when a test exits.
struct FlightGuard {
  explicit FlightGuard(std::string p = {}) : path(std::move(p)) {}
  ~FlightGuard() {
    flight::Recorder::instance().disable();
    flight::Recorder::instance().reset();
    netgym::set_num_threads(0);
    if (!path.empty()) std::remove(path.c_str());
  }
  std::string path;
};

/// Builds and submits a 2-step episode whose mean reward is `mean`.
void submit_episode(double mean) {
  auto cap = flight::begin_episode("lb", {"backlog_s"});
  ASSERT_NE(cap, nullptr);
  cap->add(0, mean, {1.0});
  cap->add(1, mean, {2.0});
  flight::submit(std::move(cap));
}

TEST(Flight, DisabledRecorderHandsOutNullCaptures) {
  FlightGuard guard;
  flight::Recorder::instance().disable();
  EXPECT_EQ(flight::begin_episode("lb", {"backlog_s"}), nullptr);
  flight::submit(nullptr);  // must not crash
  EXPECT_TRUE(flight::Recorder::instance().worst().empty());
}

TEST(Flight, KeepsWorstKByMeanRewardWorstFirst) {
  FlightGuard guard;
  flight::Recorder& rec = flight::Recorder::instance();
  rec.reset();
  rec.enable(/*worst_k=*/2);
  for (double mean : {-1.0, -5.0, 3.0, -2.0}) submit_episode(mean);
  rec.disable();

  EXPECT_EQ(rec.episodes_seen(), 4u);
  const auto worst = rec.worst();
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_DOUBLE_EQ(worst[0].mean_reward, -5.0);
  EXPECT_DOUBLE_EQ(worst[1].mean_reward, -2.0);
  EXPECT_EQ(worst[0].task, "lb");
  EXPECT_EQ(worst[0].steps, 2);
  ASSERT_EQ(worst[0].field_names.size(), 1u);
  EXPECT_EQ(worst[0].field_names[0], "backlog_s");
  ASSERT_EQ(worst[0].fields.size(), 1u);
  EXPECT_EQ(worst[0].fields[0], (std::vector<double>{1.0, 2.0}));
}

TEST(Flight, RetainedSetIsIndependentOfSubmissionOrder) {
  const std::vector<double> means{4.0, -3.0, 0.5, -3.0, 2.0, -7.0};
  std::vector<std::vector<double>> retained;
  for (bool reversed : {false, true}) {
    FlightGuard guard;
    flight::Recorder& rec = flight::Recorder::instance();
    rec.reset();
    rec.enable(3);
    std::vector<double> order = means;
    if (reversed) std::reverse(order.begin(), order.end());
    for (double mean : order) submit_episode(mean);
    std::vector<double> kept;
    for (const auto& e : rec.worst()) kept.push_back(e.mean_reward);
    retained.push_back(kept);
  }
  EXPECT_EQ(retained[0], retained[1]);
  EXPECT_EQ(retained[0], (std::vector<double>{-7.0, -3.0, -3.0}));
}

TEST(Flight, CaptureTruncatesStepDetailPastTheCap) {
  FlightGuard guard;
  flight::Recorder& rec = flight::Recorder::instance();
  rec.reset();
  rec.enable(1);
  auto cap = flight::begin_episode("cc", {"queue_delay_s"});
  ASSERT_NE(cap, nullptr);
  const std::size_t steps = flight::kMaxStepsCaptured + 10;
  for (std::size_t i = 0; i < steps; ++i) {
    cap->add(0, -1.0, {0.5});
  }
  flight::submit(std::move(cap));
  rec.disable();

  const auto worst = rec.worst();
  ASSERT_EQ(worst.size(), 1u);
  EXPECT_TRUE(worst[0].truncated);
  EXPECT_EQ(worst[0].steps, static_cast<std::int64_t>(steps));
  EXPECT_EQ(worst[0].actions.size(), flight::kMaxStepsCaptured);
  EXPECT_EQ(worst[0].fields[0].size(), flight::kMaxStepsCaptured);
  // Totals still cover every step, not just the captured prefix.
  EXPECT_DOUBLE_EQ(worst[0].total_reward, -static_cast<double>(steps));
  EXPECT_DOUBLE_EQ(worst[0].mean_reward, -1.0);
}

TEST(Flight, WriteJsonlEmitsOneObjectPerEpisodeWorstFirst) {
  const std::string path = ::testing::TempDir() + "flight_dump.jsonl";
  FlightGuard guard(path);
  flight::Recorder& rec = flight::Recorder::instance();
  rec.reset();
  rec.enable(2);
  for (double mean : {1.0, -4.0, -1.0}) submit_episode(mean);
  rec.write_jsonl(path);
  rec.disable();

  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& l : lines) {
    EXPECT_EQ(l.front(), '{') << l;
    EXPECT_EQ(l.back(), '}') << l;
    EXPECT_NE(l.find("\"task\":\"lb\""), std::string::npos) << l;
    EXPECT_NE(l.find("\"actions\":[0,1]"), std::string::npos) << l;
    EXPECT_NE(l.find("\"backlog_s\":[1,2]"), std::string::npos) << l;
  }
  EXPECT_NE(lines[0].find("\"mean_reward\":-4"), std::string::npos);
  EXPECT_NE(lines[1].find("\"mean_reward\":-1"), std::string::npos);
}

TEST(Flight, ConcurrentSubmissionsRetainTheGlobalWorstSet) {
  FlightGuard guard;
  flight::Recorder& rec = flight::Recorder::instance();
  rec.reset();
  rec.enable(4);
  netgym::set_num_threads(8);
  netgym::parallel_for_each(64, [&](std::size_t i) {
    auto cap = flight::begin_episode("lb", {"x"});
    ASSERT_NE(cap, nullptr);
    cap->add(0, -static_cast<double>(i), {0.0});
    flight::submit(std::move(cap));
  });
  netgym::set_num_threads(0);
  rec.disable();

  EXPECT_EQ(rec.episodes_seen(), 64u);
  const auto worst = rec.worst();
  ASSERT_EQ(worst.size(), 4u);
  for (std::size_t k = 0; k < worst.size(); ++k) {
    EXPECT_DOUBLE_EQ(worst[k].mean_reward, -(63.0 - static_cast<double>(k)));
  }
}

}  // namespace
