// Backward-compatibility pins: the reference checkpoints committed under
// tests/data/ were written by tools/make_golden_checkpoints.cpp at format
// version 1 and must keep loading -- with every bit intact -- in every
// future build. If one of these tests fails, the file format or a
// component's save_state schema changed incompatibly; the fix is a version
// bump with decode support for the old version, never regenerating the
// goldens to match new behavior. Constants here mirror the generator; keep
// them in sync.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "genet/adapter.hpp"
#include "genet/curriculum.hpp"
#include "netgym/checkpoint.hpp"
#include "netgym/rng.hpp"
#include "nn/mlp.hpp"

namespace {

namespace ckpt = netgym::checkpoint;

std::string data_path(const std::string& name) {
  return std::string(GENET_TEST_DATA_DIR) + "/" + name;
}

const std::vector<double> kGoldenMlpParams = {
    0.0,  -0.0, 0.125,  -0.5,    1.5, -2.25,
    3.0,  0.75, -0.75,  std::numeric_limits<double>::denorm_min(),
    2.0,  -3.5, 4.25,   -5.125,  6.0, 0.0078125,
    -1.0};

TEST(GoldenCheckpoint, ReferenceSnapshotStillLoads) {
  const ckpt::Snapshot snap =
      ckpt::read_file(data_path("golden_snapshot_v1.ckpt"));
  EXPECT_EQ(snap.get_i64("counters/i"), -7);
  EXPECT_EQ(snap.get_u64("counters/u"), 18446744073709551615ull);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(snap.get_double("values/pi")),
            std::bit_cast<std::uint64_t>(3.141592653589793));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(snap.get_double("values/neg_zero")),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_TRUE(std::isnan(snap.get_double("values/nan")));
  EXPECT_EQ(snap.get_string("name"), std::string("golden\n\x01", 8));
  const std::vector<double>& weights = snap.get_doubles("weights");
  ASSERT_EQ(weights.size(), 4u);
  EXPECT_EQ(weights[0], 1.0);
  EXPECT_EQ(weights[1], -2.5);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(weights[3]),
            std::bit_cast<std::uint64_t>(
                std::numeric_limits<double>::denorm_min()));
  EXPECT_EQ(snap.get_i64s("steps"), (std::vector<std::int64_t>{-3, 0, 9}));
}

TEST(GoldenCheckpoint, ReferenceMlpLoadsWithExactParameterBits) {
  netgym::Rng rng(0);
  nn::Mlp mlp({2, 3, 2}, nn::Activation::kTanh, rng);
  mlp.load_state(ckpt::read_file(data_path("golden_mlp_v1.ckpt")), "mlp/");
  ASSERT_EQ(mlp.params().size(), kGoldenMlpParams.size());
  for (std::size_t i = 0; i < kGoldenMlpParams.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(mlp.params()[i]),
              std::bit_cast<std::uint64_t>(kGoldenMlpParams[i]))
        << "param " << i;
  }
}

TEST(GoldenCheckpoint, ReferenceRngStateReplaysTheRecordedStream) {
  const ckpt::Snapshot snap = ckpt::read_file(data_path("golden_rng_v1.ckpt"));
  netgym::Rng rng(0);
  rng.set_state(snap.get_string("rng"));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rng.engine()(), snap.get_u64("next" + std::to_string(i)))
        << "draw " << i;
  }
}

TEST(GoldenCheckpoint, ReferenceCurriculumCheckpointResumesAndFinishes) {
  genet::LbAdapter adapter(1);
  genet::SearchOptions search;
  search.bo_trials = 2;
  search.envs_per_eval = 2;
  genet::CurriculumOptions options;
  options.rounds = 2;
  options.iters_per_round = 1;
  options.seed = 11;
  genet::CurriculumTrainer trainer(
      adapter, std::make_unique<genet::GenetScheme>("llf", search), options);
  trainer.load_checkpoint(data_path("golden_curriculum_v1.ckpt"));
  EXPECT_EQ(trainer.rounds_completed(), 1);
  EXPECT_EQ(trainer.distribution().num_promoted(), 1u);
  // The resumed run must be able to finish its remaining round.
  const auto records = trainer.run();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].round, 1);
  EXPECT_EQ(trainer.rounds_completed(), 2);
}

}  // namespace
