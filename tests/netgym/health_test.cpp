#include "netgym/health.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "netgym/telemetry.hpp"

namespace {

namespace health = netgym::health;
namespace tel = netgym::telemetry;

/// Enables the watchdog for one test and guarantees it is disabled and wiped
/// on the way out (the watchdog is process-global; a leaked enable would
/// silently change what later tests compute).
struct WatchdogGuard {
  explicit WatchdogGuard(health::Options options) {
    health::Watchdog::instance().reset();
    health::Watchdog::instance().enable(options);
  }
  ~WatchdogGuard() {
    health::Watchdog::instance().disable();
    health::Watchdog::instance().reset();
  }
};

struct LogFileGuard {
  explicit LogFileGuard(std::string p) : path(std::move(p)) {}
  ~LogFileGuard() {
    tel::set_global_logger(nullptr);
    std::remove(path.c_str());
  }
  std::string path;
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// A healthy-looking update at `step`.
health::IterationHealth healthy(std::int64_t step) {
  health::IterationHealth h;
  h.step = step;
  h.mean_entropy = 1.0;
  h.mean_episode_reward = static_cast<double>(step);  // keeps improving
  h.actor_grad_norm = 1.0;
  h.actor_grad_norm_clipped = 1.0;
  h.critic_grad_norm = 2.0;
  h.critic_grad_norm_clipped = 2.0;
  h.approx_kl = 0.01;
  h.explained_variance = 0.5;
  return h;
}

TEST(Watchdog, DisabledWatchdogIgnoresObservations) {
  health::Watchdog& dog = health::Watchdog::instance();
  dog.disable();
  dog.reset();
  EXPECT_FALSE(health::enabled());
  dog.observe(healthy(0));
  EXPECT_EQ(dog.checks(), 0u);
  EXPECT_EQ(dog.alerts(), 0u);
}

TEST(Watchdog, CountsChecksAndStaysQuietOnHealthyInput) {
  WatchdogGuard guard({});
  health::Watchdog& dog = health::Watchdog::instance();
  for (int i = 0; i < 5; ++i) dog.observe(healthy(i));
  EXPECT_EQ(dog.checks(), 5u);
  EXPECT_EQ(dog.alerts(), 0u);
}

TEST(Watchdog, NonFiniteAlertsAndThrowsOnlyUnderFailFast) {
  health::IterationHealth bad = healthy(3);
  bad.non_finite = true;
  bad.non_finite_what = "actor parameters";

  {
    WatchdogGuard guard({});  // fail_fast off: alert but keep going
    health::Watchdog& dog = health::Watchdog::instance();
    EXPECT_NO_THROW(dog.observe(bad));
    EXPECT_EQ(dog.alerts(), 1u);
  }
  {
    health::Options options;
    options.fail_fast = true;
    WatchdogGuard guard(options);
    health::Watchdog& dog = health::Watchdog::instance();
    try {
      dog.observe(bad);
      FAIL() << "expected HealthError";
    } catch (const health::HealthError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("iteration 3"), std::string::npos) << what;
      EXPECT_NE(what.find("actor parameters"), std::string::npos) << what;
    }
    // The alert was still recorded before the throw -- the evidence must
    // outlive the abort.
    EXPECT_EQ(dog.alerts(), 1u);
  }
}

TEST(Watchdog, EntropyCollapseFiresOnTransitionNotEveryIteration) {
  health::Options options;
  options.entropy_floor = 0.1;
  WatchdogGuard guard(options);
  health::Watchdog& dog = health::Watchdog::instance();

  health::IterationHealth h = healthy(0);
  dog.observe(h);  // above floor
  EXPECT_EQ(dog.alerts(), 0u);

  for (int i = 1; i <= 3; ++i) {  // three iterations below the floor
    h = healthy(i);
    h.mean_entropy = 0.05;
    dog.observe(h);
  }
  EXPECT_EQ(dog.alerts(), 1u);  // one excursion, one alert

  h = healthy(4);  // recovers...
  dog.observe(h);
  h = healthy(5);  // ...and collapses again: a second alert
  h.mean_entropy = 0.01;
  dog.observe(h);
  EXPECT_EQ(dog.alerts(), 2u);
}

TEST(Watchdog, RewardStallFiresOncePerStall) {
  health::Options options;
  options.reward_stall_iters = 3;
  WatchdogGuard guard(options);
  health::Watchdog& dog = health::Watchdog::instance();

  health::IterationHealth h = healthy(0);
  h.mean_episode_reward = 10.0;
  dog.observe(h);
  for (int i = 1; i <= 5; ++i) {  // no improvement for 5 iterations
    h = healthy(i);
    h.mean_episode_reward = 5.0;
    dog.observe(h);
  }
  EXPECT_EQ(dog.alerts(), 1u);  // fired at step 3, then stayed quiet

  h = healthy(6);  // a new best resets the stall clock
  h.mean_episode_reward = 20.0;
  dog.observe(h);
  for (int i = 7; i <= 10; ++i) {
    h = healthy(i);
    h.mean_episode_reward = 5.0;
    dog.observe(h);
  }
  EXPECT_EQ(dog.alerts(), 2u);
}

TEST(Watchdog, GradSpikeComparesAgainstRollingMean) {
  health::Options options;
  options.grad_spike_factor = 5.0;
  options.grad_window = 4;
  options.reward_stall_iters = 0;  // isolate the spike rule
  WatchdogGuard guard(options);
  health::Watchdog& dog = health::Watchdog::instance();

  for (int i = 0; i < 4; ++i) {  // fill the window with norm 1.0
    dog.observe(healthy(i));
  }
  EXPECT_EQ(dog.alerts(), 0u);

  health::IterationHealth spike = healthy(4);
  spike.actor_grad_norm = 10.0;  // 10x the rolling mean of 1.0
  dog.observe(spike);
  EXPECT_EQ(dog.alerts(), 1u);

  // 4.0 is below 5x the (now spike-contaminated) rolling mean: no new alert.
  health::IterationHealth calm = healthy(5);
  calm.actor_grad_norm = 4.0;
  dog.observe(calm);
  EXPECT_EQ(dog.alerts(), 1u);
}

TEST(Watchdog, EmitsHealthAndAlertRecordsToTheJsonlStream) {
  const std::string path = ::testing::TempDir() + "health_watchdog_test.jsonl";
  LogFileGuard log_guard(path);
  tel::open_global_logger(path);

  health::Options options;
  options.entropy_floor = 0.1;
  WatchdogGuard guard(options);
  health::Watchdog& dog = health::Watchdog::instance();
  dog.observe(healthy(0));
  health::IterationHealth collapsed = healthy(1);
  collapsed.mean_entropy = 0.01;
  dog.observe(collapsed);
  tel::set_global_logger(nullptr);

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);  // health, health, alert
  EXPECT_NE(lines[0].find("\"type\":\"health\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"actor_grad_norm\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"approx_kl\":0.01"), std::string::npos);
  EXPECT_NE(lines[1].find("\"mean_entropy\":0.01"), std::string::npos);
  EXPECT_NE(lines[2].find("\"type\":\"alert\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"kind\":\"entropy_collapse\""),
            std::string::npos);
  EXPECT_NE(lines[2].find("\"step\":1"), std::string::npos);
}

TEST(Watchdog, MetricsLandInTheRegistry) {
  tel::Registry::instance().reset_all();
  WatchdogGuard guard({});
  health::Watchdog& dog = health::Watchdog::instance();
  dog.observe(healthy(0));
  dog.observe(healthy(1));
  EXPECT_EQ(tel::Registry::instance().counter("health.checks").value(), 2);
  EXPECT_EQ(
      tel::Registry::instance().histogram("rl.actor_grad_norm").count(), 2u);
  EXPECT_DOUBLE_EQ(
      tel::Registry::instance().gauge("health.mean_entropy").value(), 1.0);
}

TEST(Watchdog, InstallFromEnvHonoursHealthAndFailFastVariables) {
  health::Watchdog::instance().disable();
  ::unsetenv("GENET_HEALTH");
  ::unsetenv("GENET_HEALTH_FAIL_FAST");
  EXPECT_FALSE(health::install_from_env());
  EXPECT_FALSE(health::enabled());

  const std::string path = ::testing::TempDir() + "health_env_test.jsonl";
  LogFileGuard log_guard(path);
  ::setenv("GENET_HEALTH", path.c_str(), 1);
  ::setenv("GENET_HEALTH_FAIL_FAST", "1", 1);
  EXPECT_TRUE(health::install_from_env());
  EXPECT_TRUE(health::enabled());
  EXPECT_TRUE(health::Watchdog::instance().options().fail_fast);
  EXPECT_TRUE(tel::logging_enabled());  // the env var also named the sink
  ::unsetenv("GENET_HEALTH");
  ::unsetenv("GENET_HEALTH_FAIL_FAST");
  health::Watchdog::instance().disable();
  health::Watchdog::instance().reset();
}

}  // namespace
