#include "netgym/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

/// Restores the global pool to its default size when a test exits, so thread
///-count changes never leak between tests.
struct PoolGuard {
  ~PoolGuard() { netgym::set_num_threads(0); }
};

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  netgym::ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  constexpr std::size_t kItems = 1000;
  std::vector<std::atomic<int>> hits(kItems);
  pool.for_each(kItems, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleThreadRunsInOrderOnCaller) {
  netgym::ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.for_each(16, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // no synchronization needed: serial by contract
  });
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  netgym::ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  int runs = 0;
  pool.for_each(3, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 3);
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  netgym::ThreadPool pool(2);
  pool.for_each(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, RethrowsFirstExceptionAfterFinishingAllItems) {
  netgym::ThreadPool pool(3);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.for_each(64,
                    [&](std::size_t i) {
                      if (i == 7) throw std::runtime_error("item 7");
                      completed.fetch_add(1, std::memory_order_relaxed);
                    }),
      std::runtime_error);
  // Every non-throwing item still ran; the pool is usable afterwards.
  EXPECT_EQ(completed.load(), 63);
  int runs = 0;
  pool.for_each(1, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, NestedForEachRunsInlineWithoutDeadlock) {
  netgym::ThreadPool pool(4);
  std::vector<std::atomic<int>> inner_hits(8 * 8);
  pool.for_each(8, [&](std::size_t outer) {
    pool.for_each(8, [&](std::size_t inner) {
      inner_hits[outer * 8 + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (auto& hit : inner_hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, BackToBackJobsReuseWorkers) {
  netgym::ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> runs{0};
    pool.for_each(17, [&](std::size_t) {
      runs.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(runs.load(), 17) << "round " << round;
  }
}

TEST(GlobalPool, SetNumThreadsControlsNumThreads) {
  PoolGuard guard;
  netgym::set_num_threads(3);
  EXPECT_EQ(netgym::num_threads(), 3);
  netgym::set_num_threads(1);
  EXPECT_EQ(netgym::num_threads(), 1);
  netgym::set_num_threads(0);  // back to the GENET_THREADS/hardware default
  EXPECT_GE(netgym::num_threads(), 1);
}

TEST(GlobalPool, ParallelForEachCoversAllIndices) {
  PoolGuard guard;
  for (int threads : {1, 2, 8}) {
    netgym::set_num_threads(threads);
    std::vector<std::atomic<int>> hits(257);
    netgym::parallel_for_each(hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << threads << " threads, index " << i;
    }
  }
}

}  // namespace
