// Strict integer parsing (netgym/parse.hpp): the one code path behind every
// numeric CLI flag and env knob. The old atoi/stoi paths silently accepted
// trailing junk ("8x" -> 8) or fell back to a default on garbage; these
// tests pin the replacement's contract: full-string consumption, explicit
// range checks, and loud std::invalid_argument failures that name the
// offending knob.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

#include "netgym/parallel.hpp"
#include "netgym/parse.hpp"

namespace {

std::int64_t must_parse(const std::string& text) {
  std::int64_t out = 0;
  EXPECT_TRUE(netgym::parse_i64(text, out)) << "rejected: " << text;
  return out;
}

bool rejects(const std::string& text) {
  std::int64_t out = 0;
  return !netgym::parse_i64(text, out);
}

TEST(ParseI64, AcceptsPlainIntegers) {
  EXPECT_EQ(must_parse("0"), 0);
  EXPECT_EQ(must_parse("42"), 42);
  EXPECT_EQ(must_parse("-17"), -17);
  EXPECT_EQ(must_parse("+8"), 8);
  EXPECT_EQ(must_parse("007"), 7);
}

TEST(ParseI64, AcceptsFullInt64Range) {
  EXPECT_EQ(must_parse("9223372036854775807"),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(must_parse("-9223372036854775808"),
            std::numeric_limits<std::int64_t>::min());
}

TEST(ParseI64, RejectsEmptyAndNonNumeric) {
  EXPECT_TRUE(rejects(""));
  EXPECT_TRUE(rejects("garbage"));
  EXPECT_TRUE(rejects("x12"));
  EXPECT_TRUE(rejects("-"));
  EXPECT_TRUE(rejects("+"));
}

TEST(ParseI64, RejectsTrailingJunk) {
  // The defining difference from atoi: "8x" must not become 8.
  EXPECT_TRUE(rejects("8x"));
  EXPECT_TRUE(rejects("12 "));
  EXPECT_TRUE(rejects(" 12"));
  EXPECT_TRUE(rejects("1.5"));
  EXPECT_TRUE(rejects("1e3"));
  EXPECT_TRUE(rejects("12\n"));
}

TEST(ParseI64, RejectsOverflow) {
  EXPECT_TRUE(rejects("9223372036854775808"));   // INT64_MAX + 1
  EXPECT_TRUE(rejects("-9223372036854775809"));  // INT64_MIN - 1
  EXPECT_TRUE(rejects("99999999999999999999999999"));
}

TEST(ParseI64, DoesNotTouchOutputOnFailure) {
  std::int64_t out = 123;
  EXPECT_FALSE(netgym::parse_i64("nope", out));
  EXPECT_EQ(out, 123);
}

TEST(ParseI64InRange, AcceptsBoundsInclusive) {
  EXPECT_EQ(netgym::parse_i64_in_range("--k", "1", 1, 8), 1);
  EXPECT_EQ(netgym::parse_i64_in_range("--k", "8", 1, 8), 8);
}

TEST(ParseI64InRange, ThrowsNamingTheKnob) {
  try {
    netgym::parse_i64_in_range("GENET_THREADS", "lots", 1, 4096);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("GENET_THREADS"), std::string::npos) << what;
    EXPECT_NE(what.find("'lots'"), std::string::npos) << what;
  }
}

TEST(ParseI64InRange, ThrowsOutOfRangeWithBounds) {
  try {
    netgym::parse_i64_in_range("--shards", "0", 1, 256);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--shards"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
  EXPECT_THROW(netgym::parse_i64_in_range("--k", "-1", 1, 8),
               std::invalid_argument);
  EXPECT_THROW(netgym::parse_i64_in_range("--k", "9", 1, 8),
               std::invalid_argument);
}

/// RAII env-var override so a throwing test can't leak state into the next.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(EnvI64, FallsBackWhenUnsetOrEmpty) {
  ScopedEnv unset("GENET_PARSE_TEST_KNOB", nullptr);
  EXPECT_EQ(netgym::env_i64("GENET_PARSE_TEST_KNOB", 7, 1, 100), 7);
  ScopedEnv empty("GENET_PARSE_TEST_KNOB", "");
  EXPECT_EQ(netgym::env_i64("GENET_PARSE_TEST_KNOB", 7, 1, 100), 7);
}

TEST(EnvI64, ParsesGoodValues) {
  ScopedEnv env("GENET_PARSE_TEST_KNOB", "33");
  EXPECT_EQ(netgym::env_i64("GENET_PARSE_TEST_KNOB", 7, 1, 100), 33);
}

TEST(EnvI64, ThrowsOnGarbageInsteadOfFallingBack) {
  // The bug this PR fixes: atoi("garbage") == 0 used to silently select the
  // fallback path; now the knob fails loudly, naming itself.
  ScopedEnv env("GENET_PARSE_TEST_KNOB", "garbage");
  try {
    netgym::env_i64("GENET_PARSE_TEST_KNOB", 7, 1, 100);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("GENET_PARSE_TEST_KNOB"),
              std::string::npos)
        << e.what();
  }
}

TEST(EnvI64, ThrowsOnTrailingJunkZeroAndNegative) {
  {
    ScopedEnv env("GENET_PARSE_TEST_KNOB", "8x");
    EXPECT_THROW(netgym::env_i64("GENET_PARSE_TEST_KNOB", 7, 1, 100),
                 std::invalid_argument);
  }
  {
    ScopedEnv env("GENET_PARSE_TEST_KNOB", "0");
    EXPECT_THROW(netgym::env_i64("GENET_PARSE_TEST_KNOB", 7, 1, 100),
                 std::invalid_argument);
  }
  {
    ScopedEnv env("GENET_PARSE_TEST_KNOB", "-4");
    EXPECT_THROW(netgym::env_i64("GENET_PARSE_TEST_KNOB", 7, 1, 100),
                 std::invalid_argument);
  }
}

TEST(EnvKnobs, GenetThreadsGarbageFailsLoudly) {
  // End-to-end through the real knob: set_num_threads(0) marks the pool for
  // a default-sized rebuild, and the rebuild (here via num_threads()) reads
  // GENET_THREADS through the strict parser.
  ScopedEnv env("GENET_THREADS", "garbage");
  netgym::set_num_threads(0);
  try {
    netgym::num_threads();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("GENET_THREADS"), std::string::npos)
        << e.what();
  }
  // Restore a sane pool for the rest of the test binary.
  ScopedEnv sane("GENET_THREADS", nullptr);
  netgym::set_num_threads(0);
  EXPECT_GE(netgym::num_threads(), 1);
}

TEST(EnvKnobs, GenetThreadsZeroFailsLoudly) {
  ScopedEnv env("GENET_THREADS", "0");
  netgym::set_num_threads(0);
  EXPECT_THROW(netgym::num_threads(), std::invalid_argument);
  ScopedEnv sane("GENET_THREADS", nullptr);
  netgym::set_num_threads(0);
  EXPECT_GE(netgym::num_threads(), 1);
}

double must_parse_f64(const std::string& text) {
  double out = 0.0;
  EXPECT_TRUE(netgym::parse_f64(text, out)) << "rejected: " << text;
  return out;
}

bool rejects_f64(const std::string& text) {
  double out = 0.0;
  return !netgym::parse_f64(text, out);
}

TEST(ParseF64, AcceptsPlainAndScientificNumbers) {
  EXPECT_DOUBLE_EQ(must_parse_f64("0"), 0.0);
  EXPECT_DOUBLE_EQ(must_parse_f64("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(must_parse_f64(".5"), 0.5);
  EXPECT_DOUBLE_EQ(must_parse_f64("-2.25"), -2.25);
  EXPECT_DOUBLE_EQ(must_parse_f64("+3"), 3.0);
  EXPECT_DOUBLE_EQ(must_parse_f64("1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(must_parse_f64("2.5e-2"), 0.025);
}

TEST(ParseF64, RejectsEmptyAndNonNumeric) {
  EXPECT_TRUE(rejects_f64(""));
  EXPECT_TRUE(rejects_f64("garbage"));
  EXPECT_TRUE(rejects_f64("x0.5"));
  EXPECT_TRUE(rejects_f64("-"));
  EXPECT_TRUE(rejects_f64("+"));
  EXPECT_TRUE(rejects_f64("."));
}

TEST(ParseF64, RejectsStrtodSpecials) {
  // strtod happily parses these; a config knob must not.
  EXPECT_TRUE(rejects_f64("nan"));
  EXPECT_TRUE(rejects_f64("inf"));
  EXPECT_TRUE(rejects_f64("infinity"));
  EXPECT_TRUE(rejects_f64("+inf"));
  EXPECT_TRUE(rejects_f64("-nan"));
}

TEST(ParseF64, RejectsTrailingJunkAndWhitespace) {
  // The defining difference from atof: "0.5x" must not become 0.5.
  EXPECT_TRUE(rejects_f64("0.5x"));
  EXPECT_TRUE(rejects_f64("1.5 "));
  EXPECT_TRUE(rejects_f64(" 1.5"));
  EXPECT_TRUE(rejects_f64("1.5\n"));
  EXPECT_TRUE(rejects_f64("1..5"));
}

TEST(ParseF64, RejectsOverflow) {
  EXPECT_TRUE(rejects_f64("1e999"));
  EXPECT_TRUE(rejects_f64("-1e999"));
}

TEST(ParseF64, DoesNotTouchOutputOnFailure) {
  double out = 1.25;
  EXPECT_FALSE(netgym::parse_f64("nope", out));
  EXPECT_DOUBLE_EQ(out, 1.25);
}

TEST(ParseF64InRange, AcceptsBoundsInclusive) {
  EXPECT_DOUBLE_EQ(netgym::parse_f64_in_range("--p", "0", 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(netgym::parse_f64_in_range("--p", "1", 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(netgym::parse_f64_in_range("--p", "0.75", 0.0, 1.0), 0.75);
}

TEST(ParseF64InRange, ThrowsNamingTheKnob) {
  try {
    netgym::parse_f64_in_range("GENET_FLEET_TRACE_PROB", "fast", 0.0, 1.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("GENET_FLEET_TRACE_PROB"), std::string::npos) << what;
    EXPECT_NE(what.find("expected a number"), std::string::npos) << what;
    EXPECT_NE(what.find("'fast'"), std::string::npos) << what;
  }
}

TEST(ParseF64InRange, ThrowsOutOfRangeWithBounds) {
  try {
    netgym::parse_f64_in_range("--trace-prob", "1.5", 0.0, 1.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--trace-prob"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
  EXPECT_THROW(netgym::parse_f64_in_range("--p", "-0.01", 0.0, 1.0),
               std::invalid_argument);
}

TEST(EnvF64, FallsBackWhenUnsetOrEmpty) {
  ScopedEnv unset("GENET_PARSE_TEST_FKNOB", nullptr);
  EXPECT_DOUBLE_EQ(netgym::env_f64("GENET_PARSE_TEST_FKNOB", 0.5, 0.0, 1.0),
                   0.5);
  ScopedEnv empty("GENET_PARSE_TEST_FKNOB", "");
  EXPECT_DOUBLE_EQ(netgym::env_f64("GENET_PARSE_TEST_FKNOB", 0.5, 0.0, 1.0),
                   0.5);
}

TEST(EnvF64, ParsesGoodValues) {
  ScopedEnv env("GENET_PARSE_TEST_FKNOB", "0.125");
  EXPECT_DOUBLE_EQ(netgym::env_f64("GENET_PARSE_TEST_FKNOB", 0.5, 0.0, 1.0),
                   0.125);
}

TEST(EnvF64, ThrowsOnGarbageAndOutOfRangeInsteadOfFallingBack) {
  {
    ScopedEnv env("GENET_PARSE_TEST_FKNOB", "garbage");
    try {
      netgym::env_f64("GENET_PARSE_TEST_FKNOB", 0.5, 0.0, 1.0);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("GENET_PARSE_TEST_FKNOB"),
                std::string::npos)
          << e.what();
    }
  }
  {
    ScopedEnv env("GENET_PARSE_TEST_FKNOB", "0.5x");
    EXPECT_THROW(netgym::env_f64("GENET_PARSE_TEST_FKNOB", 0.5, 0.0, 1.0),
                 std::invalid_argument);
  }
  {
    ScopedEnv env("GENET_PARSE_TEST_FKNOB", "1.5");
    EXPECT_THROW(netgym::env_f64("GENET_PARSE_TEST_FKNOB", 0.5, 0.0, 1.0),
                 std::invalid_argument);
  }
}

TEST(EnvKnobs, GenetThreadsValidValueIsUsed) {
  ScopedEnv env("GENET_THREADS", "3");
  netgym::set_num_threads(0);
  EXPECT_EQ(netgym::num_threads(), 3);
  ScopedEnv sane("GENET_THREADS", nullptr);
  netgym::set_num_threads(0);
}

}  // namespace
