#include "netgym/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using netgym::Rng;

TEST(Rng, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformDegenerateRangeReturnsBound) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform(4.2, 4.2), 4.2);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMatchesMoments) {
  Rng rng(42);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian(2.0, 0.5);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(Rng, GaussianZeroSdIsDeterministic) {
  Rng rng(1);
  EXPECT_EQ(rng.gaussian(1.5, 0.0), 1.5);
}

TEST(Rng, GaussianRejectsNegativeSd) {
  Rng rng(1);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, ExponentialMatchesMean) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 100.0), 100.0);
  }
}

TEST(Rng, ParetoMeanMatchesTheory) {
  // E[X] = shape * scale / (shape - 1) for shape > 1.
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.pareto(3.0, 1.0);
  EXPECT_NEAR(sum / n, 1.5, 0.05);
}

TEST(Rng, ParetoRejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(rng.pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.pareto(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, BernoulliExtremesAreDeterministic) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliClampsOutOfRangeProbability) {
  Rng rng(1);
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(9);
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.categorical({1.0, 2.0, 7.0})];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.02);
}

TEST(Rng, CategoricalSkipsZeroWeightEntries) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(rng.categorical({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(Rng, CategoricalRejectsDegenerateWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, ForkedStreamsDiverge) {
  Rng parent(123);
  Rng child = parent.fork();
  // The child stream must differ from the parent's continued stream.
  bool differ = false;
  Rng parent2(123);
  Rng child2 = parent2.fork();
  for (int i = 0; i < 50; ++i) {
    const double c = child.uniform(0.0, 1.0);
    const double p = parent.uniform(0.0, 1.0);
    if (c != p) differ = true;
    // Forking is itself deterministic.
    EXPECT_EQ(c, child2.uniform(0.0, 1.0));
    EXPECT_EQ(p, parent2.uniform(0.0, 1.0));
  }
  EXPECT_TRUE(differ);
}

}  // namespace
