#include "netgym/stats.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Stats, MeanHandlesEmptyAndValues) {
  EXPECT_DOUBLE_EQ(netgym::mean({}), 0.0);
  EXPECT_DOUBLE_EQ(netgym::mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, StddevMatchesSampleFormula) {
  EXPECT_DOUBLE_EQ(netgym::stddev({2.0}), 0.0);
  EXPECT_NEAR(netgym::stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              2.13808993, 1e-6);
}

TEST(Stats, MinMaxThrowOnEmpty) {
  EXPECT_THROW(netgym::min_of({}), std::invalid_argument);
  EXPECT_THROW(netgym::max_of({}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(netgym::min_of({3.0, 1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(netgym::max_of({3.0, 1.0, 2.0}), 3.0);
}

TEST(Stats, PercentileInterpolatesLinearly) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(netgym::percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(netgym::percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(netgym::percentile(xs, 50.0), 25.0);
  EXPECT_NEAR(netgym::percentile(xs, 90.0), 37.0, 1e-9);
}

TEST(Stats, PercentileIsOrderInvariant) {
  EXPECT_DOUBLE_EQ(netgym::percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Stats, PercentileValidatesInput) {
  EXPECT_THROW(netgym::percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(netgym::percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(netgym::percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Stats, MedianOfSingleton) {
  EXPECT_DOUBLE_EQ(netgym::median({5.0}), 5.0);
}

TEST(Stats, PearsonPerfectCorrelations) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  const std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(netgym::pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(netgym::pearson(xs, down), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(netgym::pearson({1.0, 2.0, 3.0}, {5.0, 5.0, 5.0}), 0.0);
}

TEST(Stats, PearsonValidatesInput) {
  EXPECT_THROW(netgym::pearson({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(netgym::pearson({1.0}, {1.0}), std::invalid_argument);
}

TEST(Stats, WinFractionCountsStrictWins) {
  EXPECT_DOUBLE_EQ(netgym::win_fraction({1.0, 3.0, 5.0}, {2.0, 2.0, 5.0}),
                   1.0 / 3.0);
  EXPECT_DOUBLE_EQ(netgym::win_fraction({}, {}), 0.0);
  EXPECT_THROW(netgym::win_fraction({1.0}, {}), std::invalid_argument);
}

}  // namespace
