#include "netgym/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace {

TEST(Stats, MeanHandlesEmptyAndValues) {
  EXPECT_DOUBLE_EQ(netgym::mean({}), 0.0);
  EXPECT_DOUBLE_EQ(netgym::mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, StddevMatchesSampleFormula) {
  EXPECT_DOUBLE_EQ(netgym::stddev({2.0}), 0.0);
  EXPECT_NEAR(netgym::stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              2.13808993, 1e-6);
}

TEST(Stats, MinMaxThrowOnEmpty) {
  EXPECT_THROW(netgym::min_of({}), std::invalid_argument);
  EXPECT_THROW(netgym::max_of({}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(netgym::min_of({3.0, 1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(netgym::max_of({3.0, 1.0, 2.0}), 3.0);
}

TEST(Stats, PercentileInterpolatesLinearly) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(netgym::percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(netgym::percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(netgym::percentile(xs, 50.0), 25.0);
  EXPECT_NEAR(netgym::percentile(xs, 90.0), 37.0, 1e-9);
}

TEST(Stats, PercentileIsOrderInvariant) {
  EXPECT_DOUBLE_EQ(netgym::percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Stats, PercentileValidatesInput) {
  EXPECT_THROW(netgym::percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(netgym::percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(netgym::percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Stats, PercentileSortedMatchesPercentileExactly) {
  // The fast path must be bit-identical to the general path, not just close:
  // Fig. 17's tables are pinned by equality in the bench pass.
  std::vector<double> xs;
  for (int i = 0; i < 101; ++i) {
    xs.push_back(std::sin(i * 0.7) * 40.0 + i);  // deterministic, unsorted
  }
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(netgym::percentile_sorted(sorted, p), netgym::percentile(xs, p))
        << "p=" << p;
  }
}

TEST(Stats, PercentileDetectsSortedInputWithoutChangingResults) {
  // Already-sorted input takes the no-copy path inside percentile(); the
  // result must match both the sorted fast path and the unsorted call.
  const std::vector<double> sorted{1.0, 2.0, 4.0, 8.0, 16.0};
  const std::vector<double> shuffled{8.0, 1.0, 16.0, 4.0, 2.0};
  for (double p : {10.0, 50.0, 90.0}) {
    const double expect = netgym::percentile(shuffled, p);
    EXPECT_EQ(netgym::percentile(sorted, p), expect) << "p=" << p;
    EXPECT_EQ(netgym::percentile_sorted(sorted, p), expect) << "p=" << p;
  }
}

TEST(Stats, PercentileSortedValidatesInput) {
  EXPECT_THROW(netgym::percentile_sorted({}, 50.0), std::invalid_argument);
  EXPECT_THROW(netgym::percentile_sorted({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(netgym::percentile_sorted({1.0}, 101.0),
               std::invalid_argument);
}

TEST(Stats, MedianOfSingleton) {
  EXPECT_DOUBLE_EQ(netgym::median({5.0}), 5.0);
}

TEST(Stats, PearsonPerfectCorrelations) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  const std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(netgym::pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(netgym::pearson(xs, down), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(netgym::pearson({1.0, 2.0, 3.0}, {5.0, 5.0, 5.0}), 0.0);
}

TEST(Stats, PearsonValidatesInput) {
  EXPECT_THROW(netgym::pearson({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(netgym::pearson({1.0}, {1.0}), std::invalid_argument);
}

TEST(Stats, WinFractionCountsStrictWins) {
  EXPECT_DOUBLE_EQ(netgym::win_fraction({1.0, 3.0, 5.0}, {2.0, 2.0, 5.0}),
                   1.0 / 3.0);
  EXPECT_DOUBLE_EQ(netgym::win_fraction({}, {}), 0.0);
  EXPECT_THROW(netgym::win_fraction({1.0}, {}), std::invalid_argument);
}

}  // namespace
