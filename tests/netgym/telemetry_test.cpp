#include "netgym/telemetry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "netgym/parallel.hpp"

namespace {

namespace tel = netgym::telemetry;

/// Removes the file and uninstalls the global logger when a test exits.
struct LogFileGuard {
  explicit LogFileGuard(std::string p) : path(std::move(p)) {}
  ~LogFileGuard() {
    tel::set_global_logger(nullptr);
    std::remove(path.c_str());
  }
  std::string path;
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Minimal structural JSON check: object braces balance outside strings and
/// the line ends exactly where the object does.
bool looks_like_json_object(const std::string& line) {
  if (line.empty() || line.front() != '{') return false;
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      if (depth == 0 && c == '}') return i + 1 == line.size();
      if (depth < 0) return false;
    }
  }
  return false;
}

TEST(Registry, CountersGaugesAndTimersAccumulate) {
  tel::Registry& reg = tel::Registry::instance();
  reg.reset_all();
  tel::Counter& c = reg.counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  // Same name resolves to the same metric.
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  EXPECT_EQ(reg.counter("test.counter").value(), 42);

  reg.gauge("test.gauge").set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("test.gauge").value(), 2.5);

  tel::TimerStat& t = reg.timer("test.timer");
  t.record_ns(1'500'000'000);
  t.record_ns(500'000'000);
  EXPECT_EQ(t.count(), 2);
  EXPECT_NEAR(t.total_seconds(), 2.0, 1e-9);
}

TEST(Registry, SnapshotIsNameSortedAndResetZeroesWithoutInvalidating) {
  tel::Registry& reg = tel::Registry::instance();
  reg.reset_all();
  tel::Counter& c = reg.counter("snap.b");
  reg.gauge("snap.a").set(1.0);
  c.add(7);

  const auto entries = reg.snapshot();
  ASSERT_GE(entries.size(), 2u);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LE(entries[i - 1].name, entries[i].name);
  }

  reg.reset_all();
  EXPECT_EQ(c.value(), 0);  // reference from before reset still valid
  c.add(3);
  EXPECT_EQ(c.value(), 3);
}

TEST(Registry, CounterIsExactUnderConcurrentIncrements) {
  tel::Registry& reg = tel::Registry::instance();
  reg.reset_all();
  tel::Counter& c = reg.counter("concurrent.counter");
  netgym::set_num_threads(8);
  netgym::parallel_for_each(64, [&](std::size_t) {
    for (int i = 0; i < 1000; ++i) c.add();
  });
  netgym::set_num_threads(0);
  EXPECT_EQ(c.value(), 64'000);
}

TEST(ScopedTimer, RecordsNonNegativeElapsedTime) {
  tel::Registry& reg = tel::Registry::instance();
  reg.reset_all();
  tel::TimerStat& stat = reg.timer("scoped.timer");
  {
    tel::ScopedTimer timer(stat);
    EXPECT_GE(timer.seconds_so_far(), 0.0);
  }
  EXPECT_EQ(stat.count(), 1);
  EXPECT_GE(stat.total_seconds(), 0.0);
}

TEST(Histogram, ExactPercentilesBelowTheCap) {
  tel::Registry& reg = tel::Registry::instance();
  reg.reset_all();
  tel::Histogram& h = reg.histogram("hist.exact");
  for (int i = 100; i >= 1; --i) h.record(i);  // 1..100, reversed
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 100);
  EXPECT_TRUE(snap.exact);
  EXPECT_DOUBLE_EQ(snap.sum, 5050.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  // Linear interpolation over the sorted samples (same as netgym::percentile).
  EXPECT_DOUBLE_EQ(snap.p50, 50.5);
  EXPECT_NEAR(snap.p90, 90.1, 1e-9);
  EXPECT_NEAR(snap.p99, 99.01, 1e-9);
}

TEST(Histogram, HandlesNegativeValuesAndIgnoresNonFinite) {
  tel::Registry& reg = tel::Registry::instance();
  reg.reset_all();
  tel::Histogram& h = reg.histogram("hist.negative");
  for (double v : {-10.0, -1.0, 0.0, 1.0, 10.0}) h.record(v);
  h.record(std::nan(""));
  h.record(std::numeric_limits<double>::infinity());
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 5);
  EXPECT_DOUBLE_EQ(snap.min, -10.0);
  EXPECT_DOUBLE_EQ(snap.max, 10.0);
  EXPECT_DOUBLE_EQ(snap.p50, 0.0);
}

TEST(Histogram, BucketEstimatesPastTheCapStayWithinRelativeError) {
  tel::Registry& reg = tel::Registry::instance();
  reg.reset_all();
  tel::Histogram& h = reg.histogram("hist.bucketed");
  const int n = static_cast<int>(tel::Histogram::kExactCap) + 2000;
  for (int i = 1; i <= n; ++i) h.record(i);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, n);
  EXPECT_FALSE(snap.exact);
  // Log buckets with 4 sub-buckets per octave: <= ~9% relative error.
  EXPECT_NEAR(snap.p50, 0.5 * n, 0.09 * n);
  EXPECT_NEAR(snap.p90, 0.9 * n, 0.09 * n);
  EXPECT_NEAR(snap.p99, 0.99 * n, 0.09 * n);
  EXPECT_DOUBLE_EQ(snap.max, n);
  // Estimates clamp into the observed range even at the extremes.
  EXPECT_GE(snap.p50, snap.min);
  EXPECT_LE(snap.p99, snap.max);
}

TEST(Histogram, ConcurrentRecordingMatchesSerialSnapshot) {
  // Order-independence is the histogram's determinism contract: the same
  // multiset of samples must yield the identical snapshot no matter how many
  // threads recorded it or in what order.
  tel::Registry& reg = tel::Registry::instance();
  reg.reset_all();
  tel::Histogram& serial = reg.histogram("hist.serial");
  tel::Histogram& parallel = reg.histogram("hist.parallel");
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 50; ++j) serial.record(i + j * 0.25);
  }
  netgym::set_num_threads(8);
  netgym::parallel_for_each(64, [&](std::size_t i) {
    for (int j = 0; j < 50; ++j) {
      parallel.record(static_cast<double>(i) + j * 0.25);
    }
  });
  netgym::set_num_threads(0);

  const auto a = serial.snapshot();
  const auto b = parallel.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p90, b.p90);
  EXPECT_EQ(a.p99, b.p99);
}

TEST(Histogram, MergeMatchesSingleStreamBelowTheExactCap) {
  // The fleet determinism contract rests on this: shard-local histograms
  // merged in shard order must be indistinguishable from one histogram that
  // saw every sample. Integer-valued samples keep the float sums exact, so
  // the comparison can demand bitwise equality.
  tel::Registry& reg = tel::Registry::instance();
  reg.reset_all();
  tel::Histogram& merged = reg.histogram("hist.merge.a");
  tel::Histogram& other = reg.histogram("hist.merge.b");
  tel::Histogram& single = reg.histogram("hist.merge.single");
  for (int i = 1; i <= 100; ++i) {
    (i % 2 == 0 ? merged : other).record(i);
    single.record(i);
  }
  merged.merge(other);
  const auto a = merged.snapshot();
  const auto b = single.snapshot();
  EXPECT_EQ(a.count, 100);
  EXPECT_TRUE(a.exact);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p90, b.p90);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.p999, b.p999);
}

TEST(Histogram, MergeOfEmptyIsANoOp) {
  tel::Registry& reg = tel::Registry::instance();
  reg.reset_all();
  tel::Histogram& h = reg.histogram("hist.merge.noop");
  tel::Histogram& empty = reg.histogram("hist.merge.empty");
  h.record(3.0);
  h.merge(empty);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_DOUBLE_EQ(snap.p50, 3.0);

  empty.merge(h);  // merging INTO an empty histogram adopts the samples
  const auto adopted = empty.snapshot();
  EXPECT_EQ(adopted.count, 1);
  EXPECT_DOUBLE_EQ(adopted.p50, 3.0);
}

TEST(Histogram, MergedPercentilesPastTheCapStayWithinRelativeError) {
  // Two shards of 3000 samples merge past the 4096-sample exact cap; the
  // snapshot must fall back to the log buckets and stay inside the
  // documented <= 9.05% relative error bound (DESIGN.md S5h).
  tel::Registry& reg = tel::Registry::instance();
  reg.reset_all();
  tel::Histogram& lo = reg.histogram("hist.merge.lo");
  tel::Histogram& hi = reg.histogram("hist.merge.hi");
  const int n = 6000;
  for (int i = 1; i <= n; ++i) (i <= n / 2 ? lo : hi).record(i);
  lo.merge(hi);
  const auto snap = lo.snapshot();
  EXPECT_EQ(snap.count, n);
  EXPECT_FALSE(snap.exact);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, n);
  EXPECT_DOUBLE_EQ(snap.sum, n * (n + 1.0) / 2.0);
  EXPECT_NEAR(snap.p50, 0.5 * n, 0.0905 * n);
  EXPECT_NEAR(snap.p90, 0.9 * n, 0.0905 * n);
  EXPECT_NEAR(snap.p99, 0.99 * n, 0.0905 * n);
  EXPECT_NEAR(snap.p999, 0.999 * n, 0.0905 * n);
  EXPECT_LE(snap.p999, snap.max);
}

TEST(Histogram, MergeAccumulatesDroppedAndSaturatedCounts) {
  tel::Registry& reg = tel::Registry::instance();
  reg.reset_all();
  tel::Histogram& a = reg.histogram("hist.merge.drop.a");
  tel::Histogram& b = reg.histogram("hist.merge.drop.b");
  a.record(std::nan(""));
  a.record(std::numeric_limits<double>::infinity());
  b.record(-std::numeric_limits<double>::infinity());
  a.record(1.0);
  // Finite but beyond the bucket range (kMinAbs * 2^64): recorded exactly
  // while under the cap but counted as tail-saturated for the bucket path.
  a.record(1e300);
  b.record(-1e300);
  a.merge(b);
  const auto snap = a.snapshot();
  EXPECT_EQ(snap.count, 3);  // 1.0, 1e300, -1e300
  EXPECT_EQ(snap.dropped, 3);
  EXPECT_EQ(snap.saturated, 2);
  EXPECT_DOUBLE_EQ(snap.max, 1e300);
  EXPECT_DOUBLE_EQ(snap.min, -1e300);
}

TEST(Histogram, ResetZeroesWithoutInvalidatingReferences) {
  tel::Registry& reg = tel::Registry::instance();
  reg.reset_all();
  tel::Histogram& h = reg.histogram("hist.reset");
  h.record(5.0);
  reg.reset_all();
  EXPECT_EQ(h.count(), 0);
  h.record(2.0);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_DOUBLE_EQ(snap.p50, 2.0);
}

TEST(Histogram, AppearsInRegistrySnapshotAndMetricsTable) {
  tel::Registry& reg = tel::Registry::instance();
  reg.reset_all();
  tel::Histogram& h = reg.histogram("hist.table");
  h.record(1.0);
  h.record(3.0);

  bool found = false;
  for (const auto& entry : reg.snapshot()) {
    if (entry.name != "hist.table") continue;
    found = true;
    EXPECT_EQ(entry.kind, tel::Registry::Kind::kHistogram);
    EXPECT_EQ(entry.count, 2);
    EXPECT_DOUBLE_EQ(entry.value, 4.0);  // sum
    EXPECT_DOUBLE_EQ(entry.hist.p50, 2.0);
  }
  EXPECT_TRUE(found);

  const std::string table = tel::format_metrics_table();
  EXPECT_NE(table.find("metric"), std::string::npos);
  EXPECT_NE(table.find("hist.table"), std::string::npos);
  EXPECT_NE(table.find("histogram"), std::string::npos);
  EXPECT_EQ(table.back(), '\n');
}

TEST(RunLogger, WritesOneParseableJsonLinePerEvent) {
  const std::string path =
      ::testing::TempDir() + "telemetry_runlogger_test.jsonl";
  LogFileGuard guard(path);
  {
    tel::RunLogger logger(path);
    logger.event("alpha", 0,
                 {{"reward", 1.5},
                  {"steps", std::int64_t{400}},
                  {"name", std::string("abr")},
                  {"config", std::vector<double>{1.0, 2.5, 3.0}}});
    logger.event("beta", 1, {{"value", -0.25}});
    EXPECT_EQ(logger.events_written(), 2u);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& line : lines) {
    EXPECT_TRUE(looks_like_json_object(line)) << line;
    EXPECT_NE(line.find("\"type\":"), std::string::npos);
    EXPECT_NE(line.find("\"step\":"), std::string::npos);
    EXPECT_NE(line.find("\"seq\":"), std::string::npos);
  }
  EXPECT_NE(lines[0].find("\"type\":\"alpha\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"config\":[1,2.5,3]"), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"beta\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\":1"), std::string::npos);
}

TEST(RunLogger, EscapesStringsAndMapsNonFiniteToNull) {
  const std::string path =
      ::testing::TempDir() + "telemetry_escape_test.jsonl";
  LogFileGuard guard(path);
  {
    tel::RunLogger logger(path);
    logger.event("weird", 0,
                 {{"text", std::string("a\"b\\c\nd\te")},
                  {"nan", std::nan("")},
                  {"inf", std::numeric_limits<double>::infinity()}});
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(looks_like_json_object(lines[0])) << lines[0];
  EXPECT_NE(lines[0].find("a\\\"b\\\\c\\nd\\te"), std::string::npos);
  EXPECT_NE(lines[0].find("\"nan\":null"), std::string::npos);
  EXPECT_NE(lines[0].find("\"inf\":null"), std::string::npos);
}

TEST(RunLogger, EscapesControlCharactersWithShorthandsAndUnicode) {
  // Backspace/form-feed get the two-character JSON shorthands; the remaining
  // control characters (here 0x01 and 0x1f) fall back to \u00xx. Nothing
  // below 0x20 may ever reach the output raw -- one raw control byte makes
  // the whole line unparseable to strict JSON readers.
  const std::string path =
      ::testing::TempDir() + "telemetry_ctrl_escape_test.jsonl";
  LogFileGuard guard(path);
  {
    tel::RunLogger logger(path);
    logger.event("ctrl", 0,
                 {{"text", std::string("a\bb\fc\x01"
                                       "d\x1f"
                                       "e")}});
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(looks_like_json_object(lines[0])) << lines[0];
  EXPECT_NE(lines[0].find("a\\bb\\fc\\u0001d\\u001fe"), std::string::npos)
      << lines[0];
  for (char c : lines[0]) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(JsonAppendString, EscapesEveryControlCharacterAndDelimiters) {
  // Exhaustive sweep over the bytes append_string must never emit raw.
  for (int c = 0; c < 0x20; ++c) {
    std::string out;
    tel::json::append_string(out, std::string(1, static_cast<char>(c)));
    ASSERT_GE(out.size(), 4u) << "byte " << c;
    EXPECT_EQ(out.front(), '"');
    EXPECT_EQ(out.back(), '"');
    EXPECT_EQ(out[1], '\\') << "byte " << c << " escaped as " << out;
  }
  std::string quote;
  tel::json::append_string(quote, "\"");
  EXPECT_EQ(quote, "\"\\\"\"");
  std::string backslash;
  tel::json::append_string(backslash, "\\");
  EXPECT_EQ(backslash, "\"\\\\\"");
}

TEST(RunLogger, ThrowsOnUnwritablePath) {
  EXPECT_THROW(tel::RunLogger("/nonexistent-dir/telemetry.jsonl"),
               std::runtime_error);
}

TEST(GlobalLogger, LogEventIsNoOpWithoutSinkAndRoutesWithOne) {
  const std::string path =
      ::testing::TempDir() + "telemetry_global_test.jsonl";
  LogFileGuard guard(path);
  tel::set_global_logger(nullptr);
  EXPECT_FALSE(tel::logging_enabled());
  tel::log_event("dropped", 0, {{"x", 1.0}});  // must not crash

  tel::open_global_logger(path);
  EXPECT_TRUE(tel::logging_enabled());
  tel::log_event("kept", 7, {{"x", 1.0}});
  tel::set_global_logger(nullptr);
  EXPECT_FALSE(tel::logging_enabled());

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"type\":\"kept\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"step\":7"), std::string::npos);
}

TEST(GlobalLogger, ConcurrentEventsInterleaveAtLineGranularity) {
  const std::string path =
      ::testing::TempDir() + "telemetry_concurrent_test.jsonl";
  LogFileGuard guard(path);
  tel::open_global_logger(path);
  netgym::set_num_threads(8);
  netgym::parallel_for_each(32, [&](std::size_t i) {
    tel::log_event("burst", static_cast<std::int64_t>(i),
                   {{"payload", std::string(64, 'x')}});
  });
  netgym::set_num_threads(0);
  tel::set_global_logger(nullptr);

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 32u);
  for (const auto& line : lines) {
    EXPECT_TRUE(looks_like_json_object(line)) << line;
  }
}

}  // namespace
