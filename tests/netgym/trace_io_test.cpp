#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "netgym/trace.hpp"

namespace {

using netgym::Rng;
using netgym::Trace;

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("genet_trace_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(TraceIoTest, SaveLoadRoundTrips) {
  Rng rng(7);
  const Trace original =
      netgym::generate_abr_trace(netgym::AbrTraceParams{}, rng);
  netgym::save_trace(original, path("roundtrip.trace"));
  const Trace loaded = netgym::load_trace(path("roundtrip.trace"));
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(loaded.timestamps_s[i], original.timestamps_s[i], 1e-6);
    EXPECT_NEAR(loaded.bandwidth_mbps[i], original.bandwidth_mbps[i], 1e-6);
  }
}

TEST_F(TraceIoTest, LoadAcceptsBlankLines) {
  std::ofstream out(path("blank.trace"));
  out << "0.0 1.5\n\n1.0 2.5\n   \n2.0 3.5\n";
  out.close();
  const Trace t = netgym::load_trace(path("blank.trace"));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.bandwidth_mbps[1], 2.5);
}

TEST_F(TraceIoTest, LoadRejectsMalformedLine) {
  std::ofstream out(path("bad.trace"));
  out << "0.0 1.5\nnot-a-number 2.0\n";
  out.close();
  EXPECT_THROW(netgym::load_trace(path("bad.trace")), std::runtime_error);
}

TEST_F(TraceIoTest, LoadRejectsEmptyFile) {
  std::ofstream out(path("empty.trace"));
  out.close();
  EXPECT_THROW(netgym::load_trace(path("empty.trace")), std::runtime_error);
}

TEST_F(TraceIoTest, LoadValidatesInvariants) {
  std::ofstream out(path("nonmono.trace"));
  out << "1.0 2.0\n0.5 3.0\n";  // timestamps not increasing
  out.close();
  EXPECT_THROW(netgym::load_trace(path("nonmono.trace")),
               std::invalid_argument);
}

TEST_F(TraceIoTest, LoadMissingFileThrows) {
  EXPECT_THROW(netgym::load_trace(path("missing.trace")), std::runtime_error);
}

TEST_F(TraceIoTest, SaveRejectsInvalidTrace) {
  Trace bad;
  bad.timestamps_s = {0.0, 1.0};
  bad.bandwidth_mbps = {1.0};
  EXPECT_THROW(netgym::save_trace(bad, path("x.trace")),
               std::invalid_argument);
}

}  // namespace
