#include "netgym/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using netgym::AbrTraceParams;
using netgym::CcTraceParams;
using netgym::Rng;
using netgym::Trace;

Trace step_trace() {
  Trace t;
  t.timestamps_s = {0.0, 1.0, 2.0, 3.0};
  t.bandwidth_mbps = {1.0, 2.0, 4.0, 8.0};
  return t;
}

TEST(Trace, BandwidthAtSelectsStepFunction) {
  const Trace t = step_trace();
  EXPECT_DOUBLE_EQ(t.bandwidth_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(1.0), 2.0);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(2.7), 4.0);
  EXPECT_DOUBLE_EQ(t.bandwidth_at(99.0), 8.0);   // held past the end
  EXPECT_DOUBLE_EQ(t.bandwidth_at(-1.0), 1.0);   // clamped at the start
}

TEST(Trace, BandwidthAtOnEmptyTraceThrows) {
  EXPECT_THROW(Trace{}.bandwidth_at(0.0), std::logic_error);
}

TEST(Trace, StatsAreCorrect) {
  const Trace t = step_trace();
  EXPECT_DOUBLE_EQ(t.mean_bandwidth(), 3.75);
  EXPECT_DOUBLE_EQ(t.min_bandwidth(), 1.0);
  EXPECT_DOUBLE_EQ(t.max_bandwidth(), 8.0);
  EXPECT_DOUBLE_EQ(t.duration_s(), 3.0);
  // Sample variance of {1,2,4,8} = 9.583..
  EXPECT_NEAR(t.bandwidth_variance(), 9.5833333, 1e-6);
  // Mean |diff| of (1,1,2,4)/... = (1+2+4)/3
  EXPECT_NEAR(t.non_smoothness(), 7.0 / 3.0, 1e-12);
}

TEST(Trace, ValidateCatchesMismatchedArrays) {
  Trace t = step_trace();
  t.bandwidth_mbps.pop_back();
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Trace, ValidateCatchesNonIncreasingTimestamps) {
  Trace t = step_trace();
  t.timestamps_s[2] = t.timestamps_s[1];
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Trace, ValidateCatchesNegativeBandwidth) {
  Trace t = step_trace();
  t.bandwidth_mbps[1] = -0.1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

struct AbrGenCase {
  double min_bw, max_bw, interval, duration;
};

class AbrTraceGen : public ::testing::TestWithParam<AbrGenCase> {};

TEST_P(AbrTraceGen, GeneratesValidTraceWithinBounds) {
  const AbrGenCase& p = GetParam();
  AbrTraceParams params{p.min_bw, p.max_bw, p.interval, p.duration};
  Rng rng(99);
  for (int rep = 0; rep < 5; ++rep) {
    const Trace t = netgym::generate_abr_trace(params, rng);
    ASSERT_NO_THROW(t.validate());
    EXPECT_GE(t.min_bandwidth(), p.min_bw - 1e-9);
    EXPECT_LE(t.max_bandwidth(), p.max_bw + 1e-9);
    // One sample per second plus jitter: duration within ~1.5 s of target.
    EXPECT_GE(t.duration_s(), p.duration - 1.6);
    EXPECT_GE(static_cast<double>(t.size()), p.duration);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AbrTraceGen,
    ::testing::Values(AbrGenCase{0.2, 5.0, 5.0, 100.0},
                      AbrGenCase{1.0, 1.0, 2.0, 40.0},    // constant bw
                      AbrGenCase{0.1, 100.0, 50.0, 400.0},
                      AbrGenCase{2.0, 3.0, 0.5, 60.0},    // fast changes
                      AbrGenCase{0.05, 0.3, 10.0, 200.0}  // slow cellular-ish
                      ));

TEST(AbrTraceGenErrors, RejectsBadParameters) {
  Rng rng(1);
  AbrTraceParams bad_range{5.0, 1.0, 5.0, 100.0};
  EXPECT_THROW(netgym::generate_abr_trace(bad_range, rng),
               std::invalid_argument);
  AbrTraceParams bad_duration{0.1, 1.0, 5.0, 0.0};
  EXPECT_THROW(netgym::generate_abr_trace(bad_duration, rng),
               std::invalid_argument);
}

TEST(AbrTraceGen, ShortIntervalProducesMoreVariation) {
  Rng rng1(7), rng2(7);
  AbrTraceParams fast{0.5, 10.0, 1.0, 300.0};
  AbrTraceParams slow{0.5, 10.0, 60.0, 300.0};
  double fast_ns = 0, slow_ns = 0;
  for (int i = 0; i < 10; ++i) {
    fast_ns += netgym::generate_abr_trace(fast, rng1).non_smoothness();
    slow_ns += netgym::generate_abr_trace(slow, rng2).non_smoothness();
  }
  EXPECT_GT(fast_ns, slow_ns * 2);
}

struct CcGenCase {
  double max_bw, interval, duration;
};

class CcTraceGen : public ::testing::TestWithParam<CcGenCase> {};

TEST_P(CcTraceGen, GeneratesValidTraceWithTenthSecondSteps) {
  const CcGenCase& p = GetParam();
  CcTraceParams params{p.max_bw, p.interval, p.duration};
  Rng rng(123);
  const Trace t = netgym::generate_cc_trace(params, rng);
  ASSERT_NO_THROW(t.validate());
  EXPECT_LE(t.max_bandwidth(), p.max_bw + 1e-9);
  EXPECT_GE(t.min_bandwidth(), std::min(1.0, p.max_bw) - 1e-9);
  // Appendix A.2: 0.1 s timestamp steps.
  ASSERT_GE(t.size(), 2u);
  EXPECT_NEAR(t.timestamps_s[1] - t.timestamps_s[0], 0.1, 1e-6);
  EXPECT_GE(t.duration_s(), p.duration - 0.2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CcTraceGen,
                         ::testing::Values(CcGenCase{3.16, 7.5, 30.0},
                                           CcGenCase{0.5, 1.0, 10.0},
                                           CcGenCase{100.0, 0.0, 30.0},
                                           CcGenCase{1.0, 30.0, 60.0}));

TEST(CcTraceGenErrors, RejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(netgym::generate_cc_trace(CcTraceParams{0.0, 5.0, 30.0}, rng),
               std::invalid_argument);
  EXPECT_THROW(netgym::generate_cc_trace(CcTraceParams{1.0, 5.0, -1.0}, rng),
               std::invalid_argument);
}

TEST(TraceGen, DeterministicGivenSeed) {
  AbrTraceParams params;
  Rng a(5), b(5);
  const Trace ta = netgym::generate_abr_trace(params, a);
  const Trace tb = netgym::generate_abr_trace(params, b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta.bandwidth_mbps[i], tb.bandwidth_mbps[i]);
    EXPECT_EQ(ta.timestamps_s[i], tb.timestamps_s[i]);
  }
}

}  // namespace
