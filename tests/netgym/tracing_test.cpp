#include "netgym/tracing.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "netgym/parallel.hpp"
#include "netgym/telemetry.hpp"

namespace {

namespace tracing = netgym::tracing;

/// Stops the tracer, removes the trace file, and restores the default pool
/// when a test exits.
struct TraceGuard {
  explicit TraceGuard(std::string p) : path(std::move(p)) {}
  ~TraceGuard() {
    tracing::stop();
    netgym::set_num_threads(0);
    std::remove(path.c_str());
  }
  std::string path;
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

int count_containing(const std::vector<std::string>& lines,
                     const std::string& needle) {
  int n = 0;
  for (const auto& line : lines) {
    if (line.find(needle) != std::string::npos) ++n;
  }
  return n;
}

TEST(Tracing, DisabledSpansRecordNothing) {
  tracing::stop();
  tracing::start(16);
  tracing::stop();  // cleared and immediately disabled
  { tracing::TraceSpan span("ignored", "task"); }
  EXPECT_EQ(tracing::recorded_spans(), 0u);
  EXPECT_EQ(tracing::dropped_spans(), 0u);
}

TEST(Tracing, WritesChromeTraceJsonWithNamesCategoriesAndIndices) {
  const std::string path = ::testing::TempDir() + "tracing_basic.json";
  TraceGuard guard(path);
  tracing::start(64);
  {
    tracing::TraceSpan outer("outer", "rl");
    tracing::TraceSpan inner("inner", "env", 7);
  }
  tracing::stop();
  EXPECT_EQ(tracing::recorded_spans(), 2u);
  EXPECT_EQ(tracing::write_chrome_trace(path), 2u);

  const auto lines = read_lines(path);
  ASSERT_GE(lines.size(), 4u);  // header + >=1 meta + 2 spans + footer
  EXPECT_EQ(lines.front(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  EXPECT_EQ(lines.back(), "]}");
  EXPECT_GE(count_containing(lines, "\"ph\":\"M\""), 1);
  EXPECT_EQ(count_containing(lines, "\"ph\":\"X\""), 2);
  EXPECT_EQ(count_containing(lines, "\"name\":\"outer\""), 1);
  EXPECT_EQ(count_containing(lines, "\"name\":\"inner\""), 1);
  EXPECT_EQ(count_containing(lines, "\"cat\":\"rl\""), 1);
  EXPECT_EQ(count_containing(lines, "\"args\":{\"index\":7}"), 1);
}

TEST(Tracing, ExplicitEndIsIdempotent) {
  const std::string path = ::testing::TempDir() + "tracing_end.json";
  TraceGuard guard(path);
  tracing::start(64);
  {
    tracing::TraceSpan span("once", "task");
    span.end();
    span.end();  // second close must not emit a duplicate
  }                // neither must the destructor
  tracing::stop();
  EXPECT_EQ(tracing::recorded_spans(), 1u);
}

TEST(Tracing, RingOverflowDropsOldestAndCountsDrops) {
  const std::string path = ::testing::TempDir() + "tracing_overflow.json";
  TraceGuard guard(path);
  tracing::start(/*buffer_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    tracing::TraceSpan span("burst", "task", i);
  }
  tracing::stop();
  EXPECT_EQ(tracing::recorded_spans(), 4u);
  EXPECT_EQ(tracing::dropped_spans(), 6u);
  EXPECT_EQ(tracing::write_chrome_trace(path), 4u);
  // The ring keeps the newest records: indices 6..9 survive, 0..5 are gone.
  const auto lines = read_lines(path);
  EXPECT_EQ(count_containing(lines, "\"args\":{\"index\":9}"), 1);
  EXPECT_EQ(count_containing(lines, "\"args\":{\"index\":5}"), 0);
}

TEST(Tracing, StartClearsPreviouslyCollectedSpans) {
  tracing::start(16);
  { tracing::TraceSpan span("old", "task"); }
  EXPECT_EQ(tracing::recorded_spans(), 1u);
  tracing::start(16);
  EXPECT_EQ(tracing::recorded_spans(), 0u);
  tracing::stop();
}

TEST(Tracing, WriteThrowsOnUnwritablePath) {
  tracing::start(16);
  tracing::stop();
  EXPECT_THROW(tracing::write_chrome_trace("/nonexistent-dir/trace.json"),
               std::runtime_error);
}

TEST(Tracing, PoolWorkersEmitSpansAlongsideScopedTimers) {
  // Nested ScopedTimer + TraceSpan on worker threads: the pool items each
  // record one span and one timer sample, and the trace carries the item
  // spans injected by the pool itself (pool.item, tagged with the index).
  const std::string path = ::testing::TempDir() + "tracing_pool.json";
  TraceGuard guard(path);
  netgym::telemetry::Registry& reg = netgym::telemetry::Registry::instance();
  reg.reset_all();
  netgym::telemetry::TimerStat& timer = reg.timer("tracing_test.item");

  netgym::set_num_threads(4);
  tracing::start(1 << 12);
  netgym::parallel_for_each(32, [&](std::size_t i) {
    netgym::telemetry::ScopedTimer t(timer);
    tracing::TraceSpan span("work", "task", static_cast<std::int64_t>(i));
  });
  tracing::stop();
  netgym::set_num_threads(0);

  EXPECT_EQ(timer.count(), 32);
  tracing::write_chrome_trace(path);
  const auto lines = read_lines(path);
  EXPECT_EQ(count_containing(lines, "\"name\":\"work\""), 32);
  // The pool's own instrumentation wraps every item.
  EXPECT_EQ(count_containing(lines, "\"name\":\"pool.item\""), 32);
}

TEST(Tracing, ExceptionsPropagateOutOfTracedJobs) {
  // A throwing traced job must surface its exception through the pool, and
  // the tracer must remain usable afterwards.
  const std::string path = ::testing::TempDir() + "tracing_throw.json";
  TraceGuard guard(path);
  netgym::set_num_threads(4);
  tracing::start(1 << 12);
  EXPECT_THROW(netgym::parallel_for_each(8,
                                         [&](std::size_t i) {
                                           tracing::TraceSpan span("boom",
                                                                   "task");
                                           if (i == 3) {
                                             throw std::runtime_error("job");
                                           }
                                         }),
               std::runtime_error);
  netgym::set_num_threads(0);

  { tracing::TraceSpan span("after", "task"); }
  tracing::stop();
  tracing::write_chrome_trace(path);
  const auto lines = read_lines(path);
  EXPECT_EQ(count_containing(lines, "\"name\":\"after\""), 1);
}

}  // namespace
