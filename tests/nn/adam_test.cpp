#include "nn/adam.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using nn::Adam;

TEST(Adam, ValidatesOptions) {
  EXPECT_THROW(Adam(3, {.lr = 0.0}), std::invalid_argument);
  EXPECT_THROW(Adam(3, {.beta1 = 1.0}), std::invalid_argument);
  EXPECT_THROW(Adam(3, {.beta2 = -0.1}), std::invalid_argument);
}

TEST(Adam, StepValidatesSizes) {
  Adam opt(3);
  std::vector<double> params(3, 0.0);
  std::vector<double> grads(2, 0.0);
  EXPECT_THROW(opt.step(params, grads), std::invalid_argument);
}

TEST(Adam, MinimizesQuadratic) {
  // f(x) = sum (x_i - t_i)^2, gradient 2(x - t).
  const std::vector<double> target{1.0, -2.0, 0.5};
  std::vector<double> x{5.0, 5.0, 5.0};
  Adam opt(3, {.lr = 0.05, .max_grad_norm = 0.0});
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> g(3);
    for (int j = 0; j < 3; ++j) g[j] = 2 * (x[j] - target[j]);
    opt.step(x, g);
  }
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(x[j], target[j], 1e-3);
}

TEST(Adam, FirstStepMovesByLearningRate) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  std::vector<double> x{0.0};
  Adam opt(1, {.lr = 0.1, .max_grad_norm = 0.0});
  opt.step(x, {3.0});
  EXPECT_NEAR(x[0], -0.1, 1e-6);
}

TEST(Adam, GradientClippingBoundsStep) {
  std::vector<double> a{0.0}, b{0.0};
  Adam clipped(1, {.lr = 0.1, .max_grad_norm = 1.0});
  Adam unclipped(1, {.lr = 0.1, .max_grad_norm = 0.0});
  clipped.step(a, {100.0});
  unclipped.step(b, {100.0});
  // Both move by ~lr on the first step (Adam normalizes), but the clipped
  // optimizer saw gradient 1.0 -- verify by the accumulated second moment:
  // a second zero-gradient step decays differently.
  clipped.step(a, {0.0});
  unclipped.step(b, {0.0});
  EXPECT_NE(a[0], b[0]);
}

TEST(Adam, ResetClearsState) {
  std::vector<double> x{0.0};
  Adam opt(1, {.lr = 0.1, .max_grad_norm = 0.0});
  opt.step(x, {1.0});
  const double after_first = x[0];
  opt.reset();
  x[0] = 0.0;
  opt.step(x, {1.0});
  EXPECT_DOUBLE_EQ(x[0], after_first);
}

TEST(Adam, SetLearningRateTakesEffect) {
  std::vector<double> x{0.0};
  Adam opt(1, {.lr = 0.1, .max_grad_norm = 0.0});
  opt.set_learning_rate(0.2);
  opt.step(x, {1.0});
  EXPECT_NEAR(x[0], -0.2, 1e-6);
}

}  // namespace
