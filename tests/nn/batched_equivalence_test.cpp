// Pins the strict-mode determinism contract of the batched math layer
// (DESIGN.md, "Batched math layer"): a batched forward/backward pass is
// bit-identical to looping the per-sample one — outputs, cached
// activations, and accumulated gradients alike — at any batch size and
// under any batch split. Everything downstream (lockstep rollouts, batched
// A2C/PPO updates, golden checkpoints) leans on exactly this property.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "netgym/rng.hpp"
#include "nn/gemm.hpp"
#include "nn/mlp.hpp"
#include "rl/policy.hpp"

namespace {

using netgym::Rng;
using nn::Activation;
using nn::Mlp;

struct MathModeGuard {
  ~MathModeGuard() { nn::set_math_mode(nn::MathMode::kStrict); }
};

std::vector<double> batch_inputs(int n, int width, double scale) {
  std::vector<double> x(static_cast<std::size_t>(n) * width);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = scale * std::sin(0.37 * static_cast<double>(i + 1));
  }
  return x;
}

class BatchedEquivalenceTest : public ::testing::TestWithParam<Activation> {};

TEST_P(BatchedEquivalenceTest, ForwardBatchMatchesLoopedForwardBitForBit) {
  Rng rng(11);
  Mlp net(std::vector<int>{6, 32, 32, 4}, GetParam(), rng);
  Mlp loop_net = net;  // identical parameters, independent scratch
  for (int n : {1, 2, 5, 32, 70}) {
    const std::vector<double> x = batch_inputs(n, 6, 1.0);
    const std::vector<double>& batched = net.forward_batch(x.data(), n);
    ASSERT_EQ(batched.size(), static_cast<std::size_t>(n) * 4);
    for (int m = 0; m < n; ++m) {
      const std::vector<double> one(x.begin() + m * 6, x.begin() + (m + 1) * 6);
      const std::vector<double>& y = loop_net.forward(one);
      for (int j = 0; j < 4; ++j) {
        EXPECT_EQ(y[j], batched[static_cast<std::size_t>(m) * 4 + j])
            << "n=" << n << " row=" << m << " col=" << j;
      }
    }
  }
}

TEST_P(BatchedEquivalenceTest, BackwardBatchAccumulatesIdenticalGradients) {
  Rng rng(23);
  Mlp net(std::vector<int>{5, 16, 3}, GetParam(), rng);
  Mlp loop_net = net;
  const int n = 13;
  const std::vector<double> x = batch_inputs(n, 5, 0.8);
  const std::vector<double> g = batch_inputs(n, 3, 0.5);

  // Two successive batches without zero_grad in between: accumulation on
  // top of existing gradients must also be order-exact.
  for (int round = 0; round < 2; ++round) {
    net.forward_batch(x.data(), n);
    net.backward_batch(g.data(), n);
    for (int m = 0; m < n; ++m) {
      const std::vector<double> one_x(x.begin() + m * 5,
                                      x.begin() + (m + 1) * 5);
      const std::vector<double> one_g(g.begin() + m * 3,
                                      g.begin() + (m + 1) * 3);
      loop_net.forward(one_x);
      loop_net.backward(one_g);
    }
    EXPECT_EQ(net.grads(), loop_net.grads()) << "round " << round;
  }
}

TEST_P(BatchedEquivalenceTest, SplitBatchesMatchOneBatch) {
  Rng rng(31);
  Mlp whole(std::vector<int>{4, 12, 2}, GetParam(), rng);
  Mlp split = whole;
  const int n = 9;
  const std::vector<double> x = batch_inputs(n, 4, 1.2);
  const std::vector<double> g = batch_inputs(n, 2, 0.6);

  whole.forward_batch(x.data(), n);
  whole.backward_batch(g.data(), n);

  const int first = 4;
  std::vector<double> out_split;
  {
    const std::vector<double>& top = split.forward_batch(x.data(), first);
    out_split.assign(top.begin(), top.end());
    split.backward_batch(g.data(), first);
  }
  {
    const std::vector<double>& bottom = split.forward_batch(
        x.data() + static_cast<std::size_t>(first) * 4, n - first);
    out_split.insert(out_split.end(), bottom.begin(), bottom.end());
    split.backward_batch(g.data() + static_cast<std::size_t>(first) * 2,
                         n - first);
  }

  // Outputs were consumed before the second forward overwrote the scratch;
  // compare against a fresh whole-batch forward.
  Mlp check = whole;
  const std::vector<double>& out_whole = check.forward_batch(x.data(), n);
  EXPECT_EQ(out_split, out_whole);
  EXPECT_EQ(whole.grads(), split.grads());
}

INSTANTIATE_TEST_SUITE_P(Activations, BatchedEquivalenceTest,
                         ::testing::Values(Activation::kTanh,
                                           Activation::kRelu));

TEST(BatchedEquivalence, FastModeSingleSampleMatchesStrict) {
  // The n==1 forward path is the plain dot-product kernel, which fast mode
  // does not alter: per-sample inference gives the same bits in both modes
  // (so flipping GENET_MATH cannot change greedy evaluation of one sample).
  MathModeGuard guard;
  Rng rng(7);
  Mlp net(std::vector<int>{6, 32, 32, 4}, Activation::kTanh, rng);
  const std::vector<double> x = batch_inputs(1, 6, 1.0);
  const std::vector<double> strict_out = net.forward(x);
  nn::set_math_mode(nn::MathMode::kFast);
  const std::vector<double>& fast_out = net.forward(x);
  EXPECT_EQ(strict_out, fast_out);
}

TEST(BatchedEquivalence, PolicyActBatchMatchesScalarActDrawForDraw) {
  Rng init(3);
  rl::MlpPolicy policy(5, 4, {16, 16}, init);
  rl::MlpPolicy scalar_policy = policy;

  const int n = 8;
  const std::vector<double> obs = batch_inputs(n, 5, 1.0);

  // One independent stream per row, forked identically for both paths.
  Rng root_a(99);
  Rng root_b(99);
  std::vector<Rng> streams_a;
  std::vector<Rng> streams_b;
  for (int i = 0; i < n; ++i) {
    streams_a.push_back(root_a.fork());
    streams_b.push_back(root_b.fork());
  }

  std::vector<int> batched_actions(n);
  std::vector<Rng*> rng_ptrs(n);
  for (int i = 0; i < n; ++i) rng_ptrs[i] = &streams_a[static_cast<std::size_t>(i)];
  policy.act_batch(obs.data(), n, rng_ptrs.data(), batched_actions.data());

  for (int i = 0; i < n; ++i) {
    const netgym::Observation one(obs.begin() + i * 5, obs.begin() + (i + 1) * 5);
    const int action = scalar_policy.act(one, streams_b[static_cast<std::size_t>(i)]);
    EXPECT_EQ(action, batched_actions[static_cast<std::size_t>(i)]) << "row " << i;
    // Identical draw counts: the streams must be in the same state after.
    EXPECT_EQ(streams_a[static_cast<std::size_t>(i)].uniform(0.0, 1.0),
              streams_b[static_cast<std::size_t>(i)].uniform(0.0, 1.0));
  }
}

TEST(BatchedEquivalence, GreedyActBatchMatchesScalarAct) {
  Rng init(5);
  rl::MlpPolicy policy(4, 6, {8}, init);
  policy.set_greedy(true);
  rl::MlpPolicy scalar_policy = policy;

  const int n = 5;
  const std::vector<double> obs = batch_inputs(n, 4, 0.9);
  std::vector<int> batched_actions(n);
  Rng unused(1);
  std::vector<Rng*> rng_ptrs(n, &unused);
  policy.act_batch(obs.data(), n, rng_ptrs.data(), batched_actions.data());
  for (int i = 0; i < n; ++i) {
    const netgym::Observation one(obs.begin() + i * 4, obs.begin() + (i + 1) * 4);
    EXPECT_EQ(scalar_policy.act(one, unused),
              batched_actions[static_cast<std::size_t>(i)]);
  }
}

TEST(BatchedEquivalence, BackwardBatchRequiresMatchingForward) {
  Rng rng(1);
  Mlp net(std::vector<int>{3, 4, 2}, Activation::kTanh, rng);
  const std::vector<double> g(2 * 4, 0.1);
  EXPECT_THROW(net.backward_batch(g.data(), 4), std::logic_error);
  const std::vector<double> x = batch_inputs(2, 3, 1.0);
  net.forward_batch(x.data(), 2);
  EXPECT_THROW(net.backward_batch(g.data(), 4), std::invalid_argument);
  net.backward_batch(g.data(), 2);  // matching size is fine
}

}  // namespace
