#include "nn/gemm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace {

using nn::MathMode;

/// Restores strict mode on scope exit so a failing test cannot leak fast
/// mode into the rest of the suite (the determinism tests assume strict).
struct MathModeGuard {
  ~MathModeGuard() { nn::set_math_mode(MathMode::kStrict); }
};

std::vector<double> filled(int n, double scale) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = std::sin(scale * (i + 1));
  return v;
}

/// The definition the strict contract pins: ascending-k accumulation, one
/// multiply and one add per term, seeded from the existing C value.
void naive_gemm_nn(int M, int N, int K, const std::vector<double>& A,
                   const std::vector<double>& B, std::vector<double>& C) {
  for (int m = 0; m < M; ++m) {
    for (int n = 0; n < N; ++n) {
      double acc = C[static_cast<std::size_t>(m) * N + n];
      for (int k = 0; k < K; ++k) {
        acc += A[static_cast<std::size_t>(m) * K + k] *
               B[static_cast<std::size_t>(k) * N + n];
      }
      C[static_cast<std::size_t>(m) * N + n] = acc;
    }
  }
}

void naive_gemm_tn(int M, int N, int K, const std::vector<double>& A,
                   const std::vector<double>& B, std::vector<double>& C) {
  for (int m = 0; m < M; ++m) {
    for (int n = 0; n < N; ++n) {
      double acc = C[static_cast<std::size_t>(m) * N + n];
      for (int k = 0; k < K; ++k) {
        acc += A[static_cast<std::size_t>(k) * M + m] *
               B[static_cast<std::size_t>(k) * N + n];
      }
      C[static_cast<std::size_t>(m) * N + n] = acc;
    }
  }
}

struct Shape {
  int M, N, K;
};

// Exercises every tiling path: M=1 single row, N<4 (pure scalar tail),
// 4<=N<16 (quad + tail), N=16 (one full vector tile), odd N (tile + quad +
// tail), N=K=1 degenerate, and a larger-than-cache-tile case.
const Shape kShapes[] = {{1, 1, 1},   {1, 7, 5},   {3, 2, 9},  {5, 16, 16},
                         {4, 19, 11}, {32, 32, 32}, {8, 37, 3}, {64, 33, 17}};

TEST(Gemm, StrictMatchesNaiveBitForBit) {
  for (const Shape& s : kShapes) {
    const std::vector<double> a = filled(s.M * s.K, 0.3);
    const std::vector<double> b = filled(s.K * s.N, 0.7);
    std::vector<double> c_naive = filled(s.M * s.N, 1.1);  // nonzero seed
    std::vector<double> c_gemm = c_naive;
    naive_gemm_nn(s.M, s.N, s.K, a, b, c_naive);
    nn::gemm_nn(s.M, s.N, s.K, a.data(), b.data(), c_gemm.data());
    EXPECT_EQ(c_naive, c_gemm) << "gemm_nn " << s.M << "x" << s.N << "x" << s.K;
  }
}

TEST(Gemm, StrictTransposedMatchesNaiveBitForBit) {
  for (const Shape& s : kShapes) {
    const std::vector<double> a = filled(s.K * s.M, 0.4);
    const std::vector<double> b = filled(s.K * s.N, 0.9);
    std::vector<double> c_naive = filled(s.M * s.N, 0.2);
    std::vector<double> c_gemm = c_naive;
    naive_gemm_tn(s.M, s.N, s.K, a, b, c_naive);
    nn::gemm_tn(s.M, s.N, s.K, a.data(), b.data(), c_gemm.data());
    EXPECT_EQ(c_naive, c_gemm) << "gemm_tn " << s.M << "x" << s.N << "x" << s.K;
  }
}

TEST(Gemm, ScalarKernelsMatchDispatchedStrict) {
  // When AVX2 is available, strict dispatches to the multiply-then-add
  // vector kernels; they must be indistinguishable from the scalar
  // reference (this is what makes the dispatch an implementation detail).
  for (const Shape& s : kShapes) {
    const std::vector<double> a = filled(s.M * s.K, 0.5);
    const std::vector<double> b = filled(s.K * s.N, 0.6);
    std::vector<double> c_scalar = filled(s.M * s.N, 0.8);
    std::vector<double> c_dispatch = c_scalar;
    nn::detail::gemm_nn_scalar(s.M, s.N, s.K, a.data(), b.data(),
                               c_scalar.data());
    nn::gemm_nn(s.M, s.N, s.K, a.data(), b.data(), c_dispatch.data());
    EXPECT_EQ(c_scalar, c_dispatch);
  }
}

TEST(Gemm, AccumulatesIntoExistingC) {
  const std::vector<double> a = filled(4, 0.3);  // 2x2
  const std::vector<double> b = filled(4, 0.7);
  std::vector<double> c{10.0, 20.0, 30.0, 40.0};
  std::vector<double> expected = c;
  naive_gemm_nn(2, 2, 2, a, b, expected);
  nn::gemm_nn(2, 2, 2, a.data(), b.data(), c.data());
  EXPECT_EQ(expected, c);
  EXPECT_GT(std::abs(c[0] - 10.0), 0.0);  // it really added something
}

TEST(Gemm, SplitBatchesAreBitIdenticalToOneCall) {
  // Rows of C depend only on the matching rows of A, so computing the top
  // and bottom halves in separate calls must give the same bits. This is
  // the property that makes lockstep rollout results independent of the
  // thread count / job grouping.
  const int M = 10;
  const int N = 13;
  const int K = 21;
  const std::vector<double> a = filled(M * K, 0.2);
  const std::vector<double> b = filled(K * N, 0.8);
  std::vector<double> c_whole(static_cast<std::size_t>(M) * N, 0.0);
  std::vector<double> c_split = c_whole;
  nn::gemm_nn(M, N, K, a.data(), b.data(), c_whole.data());
  const int top = 3;
  nn::gemm_nn(top, N, K, a.data(), b.data(), c_split.data());
  nn::gemm_nn(M - top, N, K, a.data() + static_cast<std::size_t>(top) * K,
              b.data(), c_split.data() + static_cast<std::size_t>(top) * N);
  EXPECT_EQ(c_whole, c_split);
}

TEST(Gemm, FastModeIsCloseAndRunToRunReproducible) {
  MathModeGuard guard;
  const int M = 16;
  const int N = 24;
  const int K = 32;
  const std::vector<double> a = filled(M * K, 0.3);
  const std::vector<double> b = filled(K * N, 0.7);
  std::vector<double> c_strict(static_cast<std::size_t>(M) * N, 0.0);
  nn::gemm_nn(M, N, K, a.data(), b.data(), c_strict.data());

  nn::set_math_mode(MathMode::kFast);
  std::vector<double> c_fast1(c_strict.size(), 0.0);
  std::vector<double> c_fast2(c_strict.size(), 0.0);
  nn::gemm_nn(M, N, K, a.data(), b.data(), c_fast1.data());
  nn::gemm_nn(M, N, K, a.data(), b.data(), c_fast2.data());
  EXPECT_EQ(c_fast1, c_fast2);  // reproducible for a fixed shape
  for (std::size_t i = 0; i < c_strict.size(); ++i) {
    EXPECT_NEAR(c_fast1[i], c_strict[i], 1e-9 * (1.0 + std::abs(c_strict[i])));
  }
}

TEST(Gemm, TransposeRoundTrips) {
  const int rows = 5;
  const int cols = 7;
  const std::vector<double> src = filled(rows * cols, 0.9);
  std::vector<double> t(src.size());
  std::vector<double> back(src.size());
  nn::transpose(rows, cols, src.data(), t.data());
  EXPECT_EQ(src[1 * cols + 3], t[3 * rows + 1]);
  nn::transpose(cols, rows, t.data(), back.data());
  EXPECT_EQ(src, back);
}

TEST(MathMode, ParseAcceptsStrictAndFast) {
  EXPECT_EQ(nn::parse_math_mode("strict"), MathMode::kStrict);
  EXPECT_EQ(nn::parse_math_mode("fast"), MathMode::kFast);
  EXPECT_THROW(nn::parse_math_mode("turbo"), std::invalid_argument);
  EXPECT_THROW(nn::parse_math_mode(""), std::invalid_argument);
  EXPECT_THROW(nn::parse_math_mode("STRICT"), std::invalid_argument);
}

TEST(MathMode, NamesRoundTrip) {
  EXPECT_STREQ(nn::math_mode_name(MathMode::kStrict), "strict");
  EXPECT_STREQ(nn::math_mode_name(MathMode::kFast), "fast");
}

TEST(MathMode, SetAndQuery) {
  MathModeGuard guard;
  nn::set_math_mode(MathMode::kFast);
  EXPECT_EQ(nn::math_mode(), MathMode::kFast);
  nn::set_math_mode(MathMode::kStrict);
  EXPECT_EQ(nn::math_mode(), MathMode::kStrict);
}

TEST(MathMode, KernelNameMatchesCapabilities) {
  MathModeGuard guard;
  nn::set_math_mode(MathMode::kStrict);
  const std::string strict_name = nn::active_kernel_name();
  nn::set_math_mode(MathMode::kFast);
  const std::string fast_name = nn::active_kernel_name();
  if (nn::cpu_has_avx2_fma()) {
    EXPECT_TRUE(nn::detail::avx2_kernels_compiled());
    EXPECT_EQ(strict_name, "avx2-strict");
    EXPECT_EQ(fast_name, "avx2-fma");
  } else {
    EXPECT_EQ(strict_name, "scalar-tiled");
    EXPECT_EQ(fast_name, "scalar-tiled");
  }
}

}  // namespace
