// Pins the allocation-churn fix in the batched math layer: once warmed up,
// Mlp::forward_batch / backward_batch and the per-sample policy act path
// must perform zero heap allocations (scratch buffers are members that only
// grow). Overriding global operator new/delete is per-binary, so this
// counter lives in the shared test executable and simply ignores all other
// tests: each test here reads the counter only across its own hot loop.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>
#include <vector>

#include "netgym/rng.hpp"
#include "nn/mlp.hpp"
#include "rl/policy.hpp"

namespace {
std::atomic<long> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using netgym::Rng;
using nn::Activation;
using nn::Mlp;

long allocations_during(const std::function<void()>& fn) {
  const long before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(MlpAlloc, SteadyStateBatchedPassesAreAllocationFree) {
  Rng rng(1);
  Mlp net(std::vector<int>{8, 32, 32, 5}, Activation::kTanh, rng);
  const int n = 32;
  std::vector<double> x(static_cast<std::size_t>(n) * 8, 0.25);
  std::vector<double> g(static_cast<std::size_t>(n) * 5, 0.1);
  // Warm-up sizes the scratch buffers.
  for (int i = 0; i < 2; ++i) {
    net.forward_batch(x.data(), n);
    net.backward_batch(g.data(), n);
  }
  const long allocs = allocations_during([&] {
    for (int i = 0; i < 10; ++i) {
      net.forward_batch(x.data(), n);
      net.backward_batch(g.data(), n);
      net.zero_grad();
    }
  });
  EXPECT_EQ(allocs, 0);
}

TEST(MlpAlloc, SmallerBatchAfterLargerOneStaysAllocationFree) {
  // Buffers only grow: after a warm-up at the largest batch, any smaller
  // batch must reuse them.
  Rng rng(2);
  Mlp net(std::vector<int>{6, 16, 3}, Activation::kTanh, rng);
  std::vector<double> x(64 * 6, 0.5);
  std::vector<double> g(64 * 3, 0.2);
  net.forward_batch(x.data(), 64);
  net.backward_batch(g.data(), 64);
  const long allocs = allocations_during([&] {
    for (int n : {1, 7, 32, 64, 5}) {
      net.forward_batch(x.data(), static_cast<std::size_t>(n));
      net.backward_batch(g.data(), static_cast<std::size_t>(n));
    }
  });
  EXPECT_EQ(allocs, 0);
}

TEST(MlpAlloc, PolicyActPathIsAllocationFree) {
  // The rollout inner loop: act() per step must not touch the heap (logits
  // live in the net's scratch, probabilities in the policy's).
  Rng init(3);
  rl::MlpPolicy policy(5, 4, {16, 16}, init);
  const netgym::Observation obs{0.1, -0.2, 0.3, 0.4, -0.5};
  Rng rng(9);
  policy.act(obs, rng);  // warm-up
  const long allocs = allocations_during([&] {
    for (int i = 0; i < 100; ++i) policy.act(obs, rng);
  });
  EXPECT_EQ(allocs, 0);

  // Greedy evaluation (deployment mode) as well.
  policy.set_greedy(true);
  policy.act(obs, rng);
  const long greedy_allocs = allocations_during([&] {
    for (int i = 0; i < 100; ++i) policy.act(obs, rng);
  });
  EXPECT_EQ(greedy_allocs, 0);
}

TEST(MlpAlloc, ActBatchSteadyStateIsAllocationFree) {
  Rng init(4);
  rl::MlpPolicy policy(4, 3, {8}, init);
  const int n = 16;
  std::vector<double> obs(static_cast<std::size_t>(n) * 4, 0.3);
  std::vector<int> actions(n);
  std::vector<Rng> streams;
  Rng root(5);
  for (int i = 0; i < n; ++i) streams.push_back(root.fork());
  std::vector<Rng*> rng_ptrs(n);
  for (int i = 0; i < n; ++i) rng_ptrs[i] = &streams[static_cast<std::size_t>(i)];
  policy.act_batch(obs.data(), n, rng_ptrs.data(), actions.data());  // warm-up
  const long allocs = allocations_during([&] {
    for (int i = 0; i < 50; ++i) {
      policy.act_batch(obs.data(), n, rng_ptrs.data(), actions.data());
    }
  });
  EXPECT_EQ(allocs, 0);
}

}  // namespace
