#include "nn/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using netgym::Rng;
using nn::Activation;
using nn::Mlp;

TEST(Mlp, ValidatesConstruction) {
  Rng rng(1);
  EXPECT_THROW(Mlp({5}, Activation::kTanh, rng), std::invalid_argument);
  EXPECT_THROW(Mlp({5, 0, 2}, Activation::kTanh, rng), std::invalid_argument);
}

TEST(Mlp, ForwardShapeAndDeterminism) {
  Rng rng(1);
  Mlp net({4, 8, 3}, Activation::kTanh, rng);
  const std::vector<double> x{0.1, -0.2, 0.3, 0.4};
  const auto y1 = net.forward(x);
  const auto y2 = net.forward(x);
  ASSERT_EQ(y1.size(), 3u);
  EXPECT_EQ(y1, y2);
}

TEST(Mlp, ForwardRejectsWrongInputSize) {
  Rng rng(1);
  Mlp net({4, 3}, Activation::kTanh, rng);
  EXPECT_THROW(net.forward({1.0}), std::invalid_argument);
}

TEST(Mlp, BackwardRequiresForward) {
  Rng rng(1);
  Mlp net({2, 2}, Activation::kTanh, rng);
  EXPECT_THROW(net.backward({1.0, 0.0}), std::logic_error);
}

TEST(Mlp, SetParamsRoundTripsAndValidates) {
  Rng rng(1);
  Mlp a({3, 5, 2}, Activation::kTanh, rng);
  Mlp b({3, 5, 2}, Activation::kTanh, rng);
  b.set_params(a.params());
  const std::vector<double> x{0.5, -1.0, 2.0};
  EXPECT_EQ(a.forward(x), b.forward(x));
  EXPECT_THROW(a.set_params({1.0}), std::invalid_argument);
}

/// Finite-difference gradient check: the core correctness property of the
/// whole training stack. Loss = sum_j c_j * y_j for random c.
class MlpGradientCheck
    : public ::testing::TestWithParam<std::tuple<std::vector<int>, int>> {};

TEST_P(MlpGradientCheck, MatchesFiniteDifferences) {
  const auto& [sizes, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const Activation act = seed % 2 == 0 ? Activation::kTanh
                                       : Activation::kRelu;
  Mlp net(sizes, act, rng);
  std::vector<double> x(static_cast<std::size_t>(sizes.front()));
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<double> c(static_cast<std::size_t>(sizes.back()));
  for (double& v : c) v = rng.uniform(-1.0, 1.0);

  auto loss = [&]() {
    const auto y = net.forward(x);
    double acc = 0.0;
    for (std::size_t j = 0; j < y.size(); ++j) acc += c[j] * y[j];
    return acc;
  };

  net.zero_grad();
  loss();  // populate the forward cache
  net.backward(c);
  const std::vector<double> analytic = net.grads();

  const double eps = 1e-6;
  std::vector<double>& params = net.params();
  // Spot-check a spread of parameters (checking all ~1000 is wasteful).
  for (std::size_t i = 0; i < params.size();
       i += std::max<std::size_t>(params.size() / 37, 1)) {
    const double original = params[i];
    params[i] = original + eps;
    const double up = loss();
    params[i] = original - eps;
    const double down = loss();
    params[i] = original;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, 1e-4 * std::max(1.0, std::abs(numeric)))
        << "param index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MlpGradientCheck,
    ::testing::Values(
        std::make_tuple(std::vector<int>{3, 4, 2}, 0),
        std::make_tuple(std::vector<int>{3, 4, 2}, 1),
        std::make_tuple(std::vector<int>{5, 8, 8, 3}, 2),
        std::make_tuple(std::vector<int>{5, 8, 8, 3}, 3),
        std::make_tuple(std::vector<int>{1, 16, 1}, 4),
        std::make_tuple(std::vector<int>{10, 32, 32, 6}, 6)));

TEST(Mlp, GradientsAccumulateAcrossBackwardCalls) {
  Rng rng(3);
  Mlp net({2, 3, 1}, Activation::kTanh, rng);
  const std::vector<double> x{0.3, -0.7};
  net.zero_grad();
  net.forward(x);
  net.backward({1.0});
  const std::vector<double> once = net.grads();
  net.forward(x);
  net.backward({1.0});
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(net.grads()[i], 2 * once[i], 1e-12);
  }
  net.zero_grad();
  for (double g : net.grads()) EXPECT_EQ(g, 0.0);
}

TEST(Softmax, NormalizesAndOrders) {
  const auto p = nn::softmax({1.0, 2.0, 3.0});
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(Softmax, StableUnderLargeLogits) {
  const auto p = nn::softmax({1000.0, 1000.0});
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
}

TEST(Softmax, RejectsEmptyInput) {
  EXPECT_THROW(nn::softmax({}), std::invalid_argument);
}

TEST(LogSoftmax, MatchesLogOfSoftmax) {
  const std::vector<double> z{0.5, -1.0, 2.0};
  const auto p = nn::softmax(z);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(nn::log_softmax_at(z, i), std::log(p[static_cast<std::size_t>(i)]), 1e-12);
  }
  EXPECT_THROW(nn::log_softmax_at(z, 3), std::invalid_argument);
  EXPECT_THROW(nn::log_softmax_at(z, -1), std::invalid_argument);
}

}  // namespace
