// Pins the two properties the checkpoint/resume invariant rests on beyond
// serialization itself: cloned policies are fully independent of their
// source (the parallel rollout engine hands each worker a clone), and
// Rng::fork produces reproducible, mutually independent streams (so the
// fork schedule -- not thread timing -- determines every random draw).

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "netgym/rng.hpp"
#include "rl/policy.hpp"

namespace {

rl::MlpPolicy make_policy(std::uint64_t seed) {
  netgym::Rng rng(seed);
  return rl::MlpPolicy(4, 3, {8, 8}, rng);
}

netgym::Observation make_obs(double x) {
  return netgym::Observation{x, -x, 0.5 * x, 1.0};
}

TEST(PolicyClone, CloneActsIdenticallyGivenTheSameStream) {
  rl::MlpPolicy original = make_policy(5);
  auto clone = original.clone();
  netgym::Rng rng_a(17);
  netgym::Rng rng_b(17);
  for (int i = 0; i < 50; ++i) {
    const netgym::Observation obs = make_obs(0.1 * i);
    EXPECT_EQ(clone->act(obs, rng_b), original.act(obs, rng_a));
  }
}

TEST(PolicyClone, CloneIsIndependentOfTheOriginal) {
  rl::MlpPolicy original = make_policy(5);
  const std::vector<double> original_params = original.snapshot();

  auto clone_base = original.clone();
  auto* clone = dynamic_cast<rl::MlpPolicy*>(clone_base.get());
  ASSERT_NE(clone, nullptr);

  // Mutating the clone's network must not leak back into the original.
  std::vector<double> mutated = clone->snapshot();
  for (double& p : mutated) p += 1.0;
  clone->restore(mutated);
  EXPECT_EQ(original.snapshot(), original_params);

  // Acting with the clone (which mutates the net's forward cache) must not
  // disturb the original's outputs either.
  netgym::Rng rng(3);
  const std::vector<double> before = original.logits(make_obs(0.25));
  clone->act(make_obs(-0.75), rng);
  EXPECT_EQ(original.logits(make_obs(0.25)), before);
}

TEST(PolicyClone, CloneCopiesTheGreedyFlag) {
  rl::MlpPolicy original = make_policy(5);
  original.set_greedy(true);
  auto clone = original.clone();
  auto* typed = dynamic_cast<rl::MlpPolicy*>(clone.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_TRUE(typed->greedy());

  // Greedy clones act deterministically without touching the RNG stream.
  netgym::Rng rng(9);
  const auto r0 = rng.engine()();
  netgym::Rng replay(9);
  typed->act(make_obs(0.5), replay);
  EXPECT_EQ(replay.engine()(), r0);
}

TEST(RngFork, ForkSequenceIsReproducibleFromTheSeed) {
  netgym::Rng a(123);
  netgym::Rng b(123);
  for (int round = 0; round < 4; ++round) {
    netgym::Rng child_a = a.fork();
    netgym::Rng child_b = b.fork();
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(child_a.engine()(), child_b.engine()());
    }
  }
}

TEST(RngFork, ForkedStreamsAreIndependentOfLaterParentDraws) {
  // The determinism contract (DESIGN.md "Threading model"): all streams are
  // forked serially *before* any work starts, after which drawing from one
  // stream never changes another. Record the child streams of a reference
  // parent, then interleave parent draws and check the children still
  // produce the exact same values.
  netgym::Rng reference(77);
  std::vector<std::vector<std::uint64_t>> expected;
  for (int k = 0; k < 3; ++k) {
    netgym::Rng child = reference.fork();
    std::vector<std::uint64_t> draws;
    for (int i = 0; i < 8; ++i) draws.push_back(child.engine()());
    expected.push_back(std::move(draws));
  }

  netgym::Rng parent(77);
  std::vector<netgym::Rng> children;
  for (int k = 0; k < 3; ++k) children.push_back(parent.fork());
  for (int i = 0; i < 100; ++i) parent.uniform(0, 1);  // later parent use
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(children[k].engine()(), expected[k][i]);
    }
  }
}

TEST(RngFork, SiblingStreamsDiffer) {
  netgym::Rng parent(42);
  netgym::Rng first = parent.fork();
  netgym::Rng second = parent.fork();
  int equal = 0;
  for (int i = 0; i < 16; ++i) {
    equal += first.engine()() == second.engine()() ? 1 : 0;
  }
  EXPECT_LT(equal, 16);
}

TEST(RngFork, EngineMatchesTheStandardMersenneTwister) {
  // netgym::Rng is a thin wrapper over std::mt19937_64, whose raw outputs
  // are pinned by the C++ standard -- this is what makes golden RNG
  // checkpoints portable across standard libraries.
  for (std::uint64_t seed : {0ull, 1ull, 5489ull, 0xdeadbeefull}) {
    netgym::Rng rng(seed);
    std::mt19937_64 reference(seed);
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(rng.engine()(), reference());
    }
  }
}

}  // namespace
