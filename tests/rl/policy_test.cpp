#include "rl/policy.hpp"

#include <gtest/gtest.h>

namespace {

using netgym::Rng;
using rl::MlpPolicy;

TEST(MlpPolicy, ValidatesConstruction) {
  Rng rng(1);
  EXPECT_THROW(MlpPolicy(0, 3, {8}, rng), std::invalid_argument);
  EXPECT_THROW(MlpPolicy(4, 0, {8}, rng), std::invalid_argument);
}

TEST(MlpPolicy, ProbsSumToOne) {
  Rng rng(1);
  MlpPolicy policy(4, 5, {8, 8}, rng);
  const auto p = policy.probs({0.1, 0.2, 0.3, 0.4});
  ASSERT_EQ(p.size(), 5u);
  double total = 0.0;
  for (double v : p) {
    EXPECT_GT(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MlpPolicy, GreedyPicksArgmaxDeterministically) {
  Rng rng(2);
  MlpPolicy policy(3, 4, {8}, rng);
  policy.set_greedy(true);
  const netgym::Observation obs{0.5, -0.5, 1.0};
  const auto logits = policy.logits(obs);
  int expected = 0;
  for (int i = 1; i < 4; ++i) {
    if (logits[static_cast<std::size_t>(i)] > logits[static_cast<std::size_t>(expected)]) expected = i;
  }
  Rng act_rng(9);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(policy.act(obs, act_rng), expected);
  }
}

TEST(MlpPolicy, SamplingFollowsProbabilities) {
  Rng rng(3);
  MlpPolicy policy(2, 3, {8}, rng);
  const netgym::Observation obs{1.0, -1.0};
  const auto p = policy.probs(obs);
  Rng act_rng(7);
  std::vector<int> counts(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[policy.act(obs, act_rng)];
  for (int a = 0; a < 3; ++a) {
    EXPECT_NEAR(counts[a] / static_cast<double>(n), p[static_cast<std::size_t>(a)], 0.02);
  }
}

TEST(MlpPolicy, SnapshotRestoreRoundTrips) {
  Rng rng(4);
  MlpPolicy a(3, 2, {8}, rng);
  MlpPolicy b(3, 2, {8}, rng);  // different random init
  const netgym::Observation obs{0.1, 0.2, 0.3};
  ASSERT_NE(a.logits(obs), b.logits(obs));
  b.restore(a.snapshot());
  EXPECT_EQ(a.logits(obs), b.logits(obs));
}

}  // namespace
