#include "rl/rollout.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using rl::RolloutBatch;
using rl::Transition;

RolloutBatch two_episode_batch() {
  RolloutBatch batch;
  // Episode 1: rewards 1, 2 (done). Episode 2: rewards 3, 4, 5 (done).
  batch.transitions = {
      Transition{{0.0}, 0, 1.0, false}, Transition{{0.0}, 0, 2.0, true},
      Transition{{0.0}, 0, 3.0, false}, Transition{{0.0}, 0, 4.0, false},
      Transition{{0.0}, 0, 5.0, true}};
  return batch;
}

TEST(RolloutBatch, CountsEpisodesAndRewards) {
  const RolloutBatch batch = two_episode_batch();
  EXPECT_EQ(batch.num_episodes(), 2);
  EXPECT_DOUBLE_EQ(batch.total_reward(), 15.0);
  EXPECT_DOUBLE_EQ(batch.mean_episode_reward(), 7.5);
}

TEST(RolloutBatch, TrailingOpenEpisodeCounts) {
  RolloutBatch batch = two_episode_batch();
  batch.transitions.push_back(Transition{{0.0}, 0, 9.0, false});
  EXPECT_EQ(batch.num_episodes(), 3);
}

TEST(DiscountedReturns, UndiscountedSumsWithinEpisodes) {
  const auto returns = discounted_returns(two_episode_batch(), 1.0);
  EXPECT_DOUBLE_EQ(returns[0], 3.0);   // 1 + 2
  EXPECT_DOUBLE_EQ(returns[1], 2.0);
  EXPECT_DOUBLE_EQ(returns[2], 12.0);  // 3 + 4 + 5
  EXPECT_DOUBLE_EQ(returns[3], 9.0);
  EXPECT_DOUBLE_EQ(returns[4], 5.0);
}

TEST(DiscountedReturns, DiscountingAndEpisodeBoundaries) {
  const double gamma = 0.5;
  const auto returns = discounted_returns(two_episode_batch(), gamma);
  EXPECT_DOUBLE_EQ(returns[1], 2.0);            // terminal step
  EXPECT_DOUBLE_EQ(returns[0], 1.0 + 0.5 * 2);  // no leak from episode 2
  EXPECT_DOUBLE_EQ(returns[4], 5.0);
  EXPECT_DOUBLE_EQ(returns[3], 4.0 + 0.5 * 5.0);
  EXPECT_DOUBLE_EQ(returns[2], 3.0 + 0.5 * (4.0 + 0.5 * 5.0));
}

TEST(DiscountedReturns, RejectsBadGamma) {
  EXPECT_THROW(discounted_returns(two_episode_batch(), -0.1),
               std::invalid_argument);
  EXPECT_THROW(discounted_returns(two_episode_batch(), 1.1),
               std::invalid_argument);
}

TEST(GaeAdvantages, ReducesToTdErrorWhenLambdaZero) {
  const RolloutBatch batch = two_episode_batch();
  const std::vector<double> values{0.5, 1.0, 2.0, 1.5, 0.5};
  const auto adv = gae_advantages(batch, values, 0.9, 0.0);
  // delta_t = r + gamma * V(s') - V(s); terminal V(s') = 0.
  EXPECT_NEAR(adv[0], 1.0 + 0.9 * 1.0 - 0.5, 1e-12);
  EXPECT_NEAR(adv[1], 2.0 - 1.0, 1e-12);
  EXPECT_NEAR(adv[2], 3.0 + 0.9 * 1.5 - 2.0, 1e-12);
  EXPECT_NEAR(adv[4], 5.0 - 0.5, 1e-12);
}

TEST(GaeAdvantages, LambdaOneMatchesReturnsMinusValues) {
  const RolloutBatch batch = two_episode_batch();
  const std::vector<double> values{0.5, 1.0, 2.0, 1.5, 0.5};
  const double gamma = 0.7;
  const auto adv = gae_advantages(batch, values, gamma, 1.0);
  const auto returns = discounted_returns(batch, gamma);
  for (std::size_t i = 0; i < adv.size(); ++i) {
    EXPECT_NEAR(adv[i], returns[i] - values[i], 1e-12) << i;
  }
}

TEST(GaeAdvantages, BootstrapsTrailingOpenEpisode) {
  RolloutBatch batch;
  batch.transitions = {Transition{{0.0}, 0, 1.0, false}};
  const auto adv =
      gae_advantages(batch, {0.0}, 0.9, 0.95, /*last_value=*/10.0);
  EXPECT_NEAR(adv[0], 1.0 + 0.9 * 10.0, 1e-12);
}

TEST(GaeAdvantages, SingleTerminalStepBatch) {
  // Smallest possible batch: one transition that ends its episode. The
  // advantage is just the TD error with a zero terminal value.
  RolloutBatch batch;
  batch.transitions = {Transition{{0.0}, 0, 3.0, true}};
  const auto adv = gae_advantages(batch, {0.5}, 0.9, 0.95);
  ASSERT_EQ(adv.size(), 1u);
  EXPECT_NEAR(adv[0], 3.0 - 0.5, 1e-12);
}

TEST(GaeAdvantages, ValidatesShapes) {
  EXPECT_THROW(gae_advantages(two_episode_batch(), {1.0}, 0.9, 0.9),
               std::invalid_argument);
}

TEST(Normalize, ZeroMeanUnitVariance) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  rl::normalize(xs);
  double mean = 0.0, var = 0.0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var, 1.0, 1e-12);
}

TEST(Normalize, ConstantInputUntouched) {
  std::vector<double> xs{2.0, 2.0, 2.0};
  rl::normalize(xs);
  for (double x : xs) EXPECT_DOUBLE_EQ(x, 2.0);
}

TEST(Normalize, SingleElementUntouched) {
  // A one-element batch has no variance; standardizing it must be a no-op
  // rather than dividing by a zero stddev.
  std::vector<double> xs{7.0};
  rl::normalize(xs);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_DOUBLE_EQ(xs[0], 7.0);
}

TEST(DiscountedReturns, SingleElementBatch) {
  RolloutBatch batch;
  batch.transitions = {Transition{{0.0}, 0, 4.0, false}};  // trailing open ep
  const auto returns = discounted_returns(batch, 0.9);
  ASSERT_EQ(returns.size(), 1u);
  EXPECT_DOUBLE_EQ(returns[0], 4.0);
}

TEST(RunningNorm, TracksMeanAndStddev) {
  rl::RunningNorm norm;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) norm.update(x);
  EXPECT_NEAR(norm.mean(), 5.0, 1e-12);
  EXPECT_NEAR(norm.stddev(), 2.13808993, 1e-6);
  EXPECT_NEAR(norm.normalize(5.0), 0.0, 1e-9);
}

TEST(RunningNorm, SafeBeforeTwoSamples) {
  rl::RunningNorm norm;
  EXPECT_DOUBLE_EQ(norm.stddev(), 1.0);  // no division blowups
  norm.update(3.0);
  EXPECT_DOUBLE_EQ(norm.stddev(), 1.0);
}

TEST(RunningNorm, SingleSampleNormalizesAgainstUnitStddev) {
  rl::RunningNorm norm;
  norm.update(3.0);
  EXPECT_DOUBLE_EQ(norm.mean(), 3.0);
  EXPECT_DOUBLE_EQ(norm.normalize(5.0), 2.0);  // (x - mean) / 1.0
}

}  // namespace
