#include "rl/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "netgym/health.hpp"

namespace {

using netgym::Env;
using netgym::Observation;
using netgym::Rng;

/// Contextual bandit: the observation one-hot-encodes which action pays 1.0
/// this step (others pay 0). Learnable by any policy-gradient method in a
/// few thousand steps; used to validate the full A2C/PPO update math.
class ContextualBanditEnv : public Env {
 public:
  static constexpr int kContexts = 3;
  static constexpr int kSteps = 20;

  explicit ContextualBanditEnv(std::uint64_t seed) : rng_(seed) {}

  Observation reset() override {
    remaining_ = kSteps;
    return draw();
  }

  StepResult step(int action) override {
    const double reward = action == correct_ ? 1.0 : 0.0;
    --remaining_;
    return {draw(), reward, remaining_ == 0};
  }

  int action_count() const override { return kContexts; }
  std::size_t observation_size() const override { return kContexts; }

 private:
  Observation draw() {
    correct_ = rng_.uniform_int(0, kContexts - 1);
    Observation obs(kContexts, 0.0);
    obs[static_cast<std::size_t>(correct_)] = 1.0;
    return obs;
  }

  Rng rng_;
  int correct_ = 0;
  int remaining_ = 0;
};

rl::EnvFactory bandit_factory() {
  return [](Rng& rng) -> std::unique_ptr<Env> {
    return std::make_unique<ContextualBanditEnv>(rng.engine()());
  };
}

double greedy_eval(rl::ActorCriticBase& trainer, int episodes) {
  trainer.policy().set_greedy(true);
  Rng rng(555);
  double total = 0.0;
  for (int e = 0; e < episodes; ++e) {
    ContextualBanditEnv env(rng.engine()());
    total += netgym::run_episode(env, trainer.policy(), rng).mean_reward;
  }
  trainer.policy().set_greedy(false);
  return total / episodes;
}

TEST(A2CTrainer, LearnsContextualBandit) {
  rl::TrainerOptions options;
  options.hidden = {16};
  options.episodes_per_iteration = 8;
  rl::A2CTrainer trainer(ContextualBanditEnv::kContexts,
                         ContextualBanditEnv::kContexts, options, 7);
  const double before = greedy_eval(trainer, 20);
  const rl::EnvFactory factory = bandit_factory();
  for (int i = 0; i < 120; ++i) trainer.train_iteration(factory);
  const double after = greedy_eval(trainer, 20);
  EXPECT_GT(after, 0.9) << "before training: " << before;
  EXPECT_GT(after, before);
}

TEST(PPOTrainer, LearnsContextualBandit) {
  rl::TrainerOptions options;
  options.hidden = {16};
  options.episodes_per_iteration = 8;
  rl::PPOTrainer trainer(ContextualBanditEnv::kContexts,
                         ContextualBanditEnv::kContexts, options, 7);
  const rl::EnvFactory factory = bandit_factory();
  for (int i = 0; i < 80; ++i) trainer.train_iteration(factory);
  EXPECT_GT(greedy_eval(trainer, 20), 0.9);
}

TEST(Trainers, IterationStatsAreConsistent) {
  rl::TrainerOptions options;
  options.episodes_per_iteration = 4;
  rl::A2CTrainer trainer(ContextualBanditEnv::kContexts,
                         ContextualBanditEnv::kContexts, options, 1);
  const rl::IterationStats stats =
      trainer.train_iteration(bandit_factory());
  EXPECT_EQ(stats.episodes, 4);
  EXPECT_EQ(stats.steps, 4 * ContextualBanditEnv::kSteps);
  EXPECT_GE(stats.mean_entropy, 0.0);
  EXPECT_LE(stats.mean_entropy, std::log(3.0) + 1e-9);
  // Random policy on a 3-armed bandit earns ~1/3 per step.
  EXPECT_NEAR(stats.mean_step_reward, 1.0 / 3.0, 0.25);
}

TEST(Trainers, SnapshotRestoreRoundTrips) {
  rl::TrainerOptions options;
  rl::PPOTrainer trainer(3, 3, options, 11);
  const std::vector<double> snap = trainer.snapshot();
  trainer.train_iteration(bandit_factory());
  EXPECT_NE(trainer.snapshot(), snap);  // training moved the parameters
  trainer.restore(snap);
  EXPECT_EQ(trainer.snapshot(), snap);
}

TEST(Trainers, DeterministicGivenSeed) {
  rl::TrainerOptions options;
  rl::A2CTrainer a(3, 3, options, 99);
  rl::A2CTrainer b(3, 3, options, 99);
  for (int i = 0; i < 5; ++i) {
    a.train_iteration(bandit_factory());
    b.train_iteration(bandit_factory());
  }
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(CollectBatch, RespectsEpisodeAndStepLimits) {
  Rng rng(1);
  rl::MlpPolicy policy(3, 3, {8}, rng);
  Rng collect_rng(2);
  const rl::RolloutBatch batch =
      rl::collect_batch(policy, bandit_factory(), collect_rng, 3,
                        /*max_steps_per_episode=*/5);
  EXPECT_EQ(batch.num_episodes(), 3);
  EXPECT_EQ(batch.size(), 15u);
  // Truncated episodes must still be marked done at their last step.
  EXPECT_TRUE(batch.transitions[4].done);
  EXPECT_THROW(
      rl::collect_batch(policy, bandit_factory(), collect_rng, 0, 5),
      std::invalid_argument);
}

/// Exposes the protected entropy-coefficient schedule for direct testing.
class ScheduleProbe : public rl::ActorCriticBase {
 public:
  using rl::ActorCriticBase::ActorCriticBase;
  using rl::ActorCriticBase::next_entropy_coef;

 protected:
  rl::IterationStats run_iteration(const rl::EnvFactory&) override {
    return {};
  }
};

TEST(EntropyOf, ZeroProbabilityEntriesContributeZeroNotNaN) {
  // lim p->0 of -p log p is 0; a degenerate one-hot distribution must read
  // as zero entropy, never NaN (log(0) would poison every later mean).
  EXPECT_DOUBLE_EQ(rl::entropy_of({1.0, 0.0, 0.0}), 0.0);
  const double h = rl::entropy_of({0.5, 0.5, 0.0});
  EXPECT_TRUE(std::isfinite(h));
  EXPECT_NEAR(h, std::log(2.0), 1e-12);
  // Probabilities below the 1e-12 guard also contribute exactly 0.
  EXPECT_DOUBLE_EQ(rl::entropy_of({1.0, 1e-15, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(rl::entropy_of({}), 0.0);
  // Uniform distribution is the maximum: log n.
  EXPECT_NEAR(rl::entropy_of({0.25, 0.25, 0.25, 0.25}), std::log(4.0), 1e-12);
}

TEST(EntropySchedule, LinearDecayHitsBothEndpointsAndClampsAtFinal) {
  rl::TrainerOptions options;
  options.entropy_coef = 0.5;
  options.entropy_coef_final = 0.03;
  options.entropy_decay_iters = 10;
  ScheduleProbe probe(3, 3, options, 1);
  EXPECT_DOUBLE_EQ(probe.next_entropy_coef(), 0.5);  // t = 0: initial value
  for (int t = 1; t < 10; ++t) {
    EXPECT_NEAR(probe.next_entropy_coef(),
                0.5 + (t / 10.0) * (0.03 - 0.5), 1e-12);
  }
  // t >= decay_iters: pinned at the final value forever (up to the rounding
  // of the lerp's last step -- progress clamps to exactly 1.0).
  EXPECT_NEAR(probe.next_entropy_coef(), 0.03, 1e-15);
  EXPECT_NEAR(probe.next_entropy_coef(), 0.03, 1e-15);
}

TEST(EntropySchedule, NonPositiveDecayItersPinsAtFinalImmediately) {
  rl::TrainerOptions options;
  options.entropy_coef = 0.5;
  options.entropy_coef_final = 0.07;
  options.entropy_decay_iters = 0;
  ScheduleProbe probe(3, 3, options, 1);
  EXPECT_DOUBLE_EQ(probe.next_entropy_coef(), 0.07);
  EXPECT_DOUBLE_EQ(probe.next_entropy_coef(), 0.07);
  options.entropy_decay_iters = -5;
  ScheduleProbe negative(3, 3, options, 1);
  EXPECT_DOUBLE_EQ(negative.next_entropy_coef(), 0.07);
}

TEST(Trainers, HealthStatsAreObservationalAndLeaveParamsIdentical) {
  namespace health = netgym::health;
  rl::TrainerOptions options;
  rl::A2CTrainer plain(3, 3, options, 42);
  rl::A2CTrainer monitored(3, 3, options, 42);
  for (int i = 0; i < 3; ++i) plain.train_iteration(bandit_factory());

  health::Watchdog::instance().enable({});
  rl::IterationStats last;
  for (int i = 0; i < 3; ++i) {
    last = monitored.train_iteration(bandit_factory());
  }
  health::Watchdog::instance().disable();
  health::Watchdog::instance().reset();

  EXPECT_TRUE(last.health.computed);
  EXPECT_GT(last.health.actor_grad_norm, 0.0);
  EXPECT_GT(last.health.critic_grad_norm, 0.0);
  EXPECT_LE(last.health.actor_grad_norm_clipped,
            last.health.actor_grad_norm + 1e-12);
  EXPECT_TRUE(std::isfinite(last.health.approx_kl));
  EXPECT_TRUE(std::isfinite(last.health.explained_variance));
  EXPECT_FALSE(last.health.non_finite);
  // The monitored run's parameters are bit-identical to the unmonitored
  // one's: the health layer is strictly observational.
  EXPECT_EQ(plain.snapshot(), monitored.snapshot());
}

TEST(Trainers, PpoHealthStatsComputedAndObservational) {
  namespace health = netgym::health;
  rl::TrainerOptions options;
  rl::PPOTrainer plain(3, 3, options, 7);
  rl::PPOTrainer monitored(3, 3, options, 7);
  for (int i = 0; i < 2; ++i) plain.train_iteration(bandit_factory());

  health::Watchdog::instance().enable({});
  rl::IterationStats last;
  for (int i = 0; i < 2; ++i) {
    last = monitored.train_iteration(bandit_factory());
  }
  health::Watchdog::instance().disable();
  health::Watchdog::instance().reset();

  EXPECT_TRUE(last.health.computed);
  // PPO moves the policy, so the post-update KL against the pre-update
  // log-probs is (weakly) informative -- and must be finite.
  EXPECT_TRUE(std::isfinite(last.health.approx_kl));
  EXPECT_FALSE(last.health.non_finite);
  EXPECT_EQ(plain.snapshot(), monitored.snapshot());
}

}  // namespace

