#include "rl/trainer.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace {

using netgym::Env;
using netgym::Observation;
using netgym::Rng;

/// Contextual bandit: the observation one-hot-encodes which action pays 1.0
/// this step (others pay 0). Learnable by any policy-gradient method in a
/// few thousand steps; used to validate the full A2C/PPO update math.
class ContextualBanditEnv : public Env {
 public:
  static constexpr int kContexts = 3;
  static constexpr int kSteps = 20;

  explicit ContextualBanditEnv(std::uint64_t seed) : rng_(seed) {}

  Observation reset() override {
    remaining_ = kSteps;
    return draw();
  }

  StepResult step(int action) override {
    const double reward = action == correct_ ? 1.0 : 0.0;
    --remaining_;
    return {draw(), reward, remaining_ == 0};
  }

  int action_count() const override { return kContexts; }
  std::size_t observation_size() const override { return kContexts; }

 private:
  Observation draw() {
    correct_ = rng_.uniform_int(0, kContexts - 1);
    Observation obs(kContexts, 0.0);
    obs[static_cast<std::size_t>(correct_)] = 1.0;
    return obs;
  }

  Rng rng_;
  int correct_ = 0;
  int remaining_ = 0;
};

rl::EnvFactory bandit_factory() {
  return [](Rng& rng) -> std::unique_ptr<Env> {
    return std::make_unique<ContextualBanditEnv>(rng.engine()());
  };
}

double greedy_eval(rl::ActorCriticBase& trainer, int episodes) {
  trainer.policy().set_greedy(true);
  Rng rng(555);
  double total = 0.0;
  for (int e = 0; e < episodes; ++e) {
    ContextualBanditEnv env(rng.engine()());
    total += netgym::run_episode(env, trainer.policy(), rng).mean_reward;
  }
  trainer.policy().set_greedy(false);
  return total / episodes;
}

TEST(A2CTrainer, LearnsContextualBandit) {
  rl::TrainerOptions options;
  options.hidden = {16};
  options.episodes_per_iteration = 8;
  rl::A2CTrainer trainer(ContextualBanditEnv::kContexts,
                         ContextualBanditEnv::kContexts, options, 7);
  const double before = greedy_eval(trainer, 20);
  const rl::EnvFactory factory = bandit_factory();
  for (int i = 0; i < 120; ++i) trainer.train_iteration(factory);
  const double after = greedy_eval(trainer, 20);
  EXPECT_GT(after, 0.9) << "before training: " << before;
  EXPECT_GT(after, before);
}

TEST(PPOTrainer, LearnsContextualBandit) {
  rl::TrainerOptions options;
  options.hidden = {16};
  options.episodes_per_iteration = 8;
  rl::PPOTrainer trainer(ContextualBanditEnv::kContexts,
                         ContextualBanditEnv::kContexts, options, 7);
  const rl::EnvFactory factory = bandit_factory();
  for (int i = 0; i < 80; ++i) trainer.train_iteration(factory);
  EXPECT_GT(greedy_eval(trainer, 20), 0.9);
}

TEST(Trainers, IterationStatsAreConsistent) {
  rl::TrainerOptions options;
  options.episodes_per_iteration = 4;
  rl::A2CTrainer trainer(ContextualBanditEnv::kContexts,
                         ContextualBanditEnv::kContexts, options, 1);
  const rl::IterationStats stats =
      trainer.train_iteration(bandit_factory());
  EXPECT_EQ(stats.episodes, 4);
  EXPECT_EQ(stats.steps, 4 * ContextualBanditEnv::kSteps);
  EXPECT_GE(stats.mean_entropy, 0.0);
  EXPECT_LE(stats.mean_entropy, std::log(3.0) + 1e-9);
  // Random policy on a 3-armed bandit earns ~1/3 per step.
  EXPECT_NEAR(stats.mean_step_reward, 1.0 / 3.0, 0.25);
}

TEST(Trainers, SnapshotRestoreRoundTrips) {
  rl::TrainerOptions options;
  rl::PPOTrainer trainer(3, 3, options, 11);
  const std::vector<double> snap = trainer.snapshot();
  trainer.train_iteration(bandit_factory());
  EXPECT_NE(trainer.snapshot(), snap);  // training moved the parameters
  trainer.restore(snap);
  EXPECT_EQ(trainer.snapshot(), snap);
}

TEST(Trainers, DeterministicGivenSeed) {
  rl::TrainerOptions options;
  rl::A2CTrainer a(3, 3, options, 99);
  rl::A2CTrainer b(3, 3, options, 99);
  for (int i = 0; i < 5; ++i) {
    a.train_iteration(bandit_factory());
    b.train_iteration(bandit_factory());
  }
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(CollectBatch, RespectsEpisodeAndStepLimits) {
  Rng rng(1);
  rl::MlpPolicy policy(3, 3, {8}, rng);
  Rng collect_rng(2);
  const rl::RolloutBatch batch =
      rl::collect_batch(policy, bandit_factory(), collect_rng, 3,
                        /*max_steps_per_episode=*/5);
  EXPECT_EQ(batch.num_episodes(), 3);
  EXPECT_EQ(batch.size(), 15u);
  // Truncated episodes must still be marked done at their last step.
  EXPECT_TRUE(batch.transitions[4].done);
  EXPECT_THROW(
      rl::collect_batch(policy, bandit_factory(), collect_rng, 0, 5),
      std::invalid_argument);
}

}  // namespace
