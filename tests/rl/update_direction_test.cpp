// White-box checks that one gradient update moves the policy in the right
// direction: actions that earned positive advantage must gain probability.

#include <gtest/gtest.h>

#include "rl/trainer.hpp"

namespace {

using netgym::Env;
using netgym::Observation;
using netgym::Rng;

/// One-step environment with a single observation; action 2 pays 1.0,
/// everything else pays 0. The simplest possible credit-assignment check.
class SingleContextBandit : public Env {
 public:
  Observation reset() override {
    done_ = false;
    return {1.0};
  }
  StepResult step(int action) override {
    if (done_) throw std::logic_error("done");
    done_ = true;
    return {{1.0}, action == 2 ? 1.0 : 0.0, true};
  }
  int action_count() const override { return 4; }
  std::size_t observation_size() const override { return 1; }

 private:
  bool done_ = false;
};

rl::EnvFactory factory() {
  return [](Rng&) -> std::unique_ptr<Env> {
    return std::make_unique<SingleContextBandit>();
  };
}

template <typename Trainer>
void expect_probability_of_good_action_grows(int iterations) {
  rl::TrainerOptions options;
  options.hidden = {8};
  options.episodes_per_iteration = 16;
  options.entropy_coef = 0.0;  // isolate the policy-gradient term
  options.entropy_coef_final = 0.0;
  Trainer trainer(1, 4, options, 5);
  const Observation obs{1.0};
  const double before = trainer.policy().probs(obs)[2];
  for (int i = 0; i < iterations; ++i) trainer.train_iteration(factory());
  const double after = trainer.policy().probs(obs)[2];
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.5);
}

TEST(UpdateDirection, A2CIncreasesRewardedActionProbability) {
  // A2C takes one gradient step per iteration (PPO takes four), so it needs
  // a larger iteration budget to cross the 0.5 mark.
  expect_probability_of_good_action_grows<rl::A2CTrainer>(150);
}

TEST(UpdateDirection, PPOIncreasesRewardedActionProbability) {
  expect_probability_of_good_action_grows<rl::PPOTrainer>(30);
}

TEST(UpdateDirection, EntropyBonusResistsCollapse) {
  // With a large, non-decaying entropy bonus the policy must stay close to
  // uniform despite the reward signal.
  rl::TrainerOptions options;
  options.hidden = {8};
  options.episodes_per_iteration = 16;
  options.entropy_coef = 5.0;
  options.entropy_coef_final = 5.0;
  rl::A2CTrainer trainer(1, 4, options, 5);
  for (int i = 0; i < 40; ++i) trainer.train_iteration(factory());
  const auto p = trainer.policy().probs({1.0});
  for (double v : p) {
    EXPECT_GT(v, 0.1);  // no action starved
    EXPECT_LT(v, 0.5);  // no action dominant
  }
}

TEST(UpdateDirection, EntropyScheduleDecaysAcrossIterations) {
  // Indirect check of the decay schedule: with entropy_coef 0.5 -> 0.0 over
  // a few iterations, the policy first stays spread, then sharpens.
  rl::TrainerOptions options;
  options.hidden = {8};
  options.episodes_per_iteration = 16;
  options.entropy_coef = 2.0;
  options.entropy_coef_final = 0.0;
  options.entropy_decay_iters = 10;
  rl::A2CTrainer trainer(1, 4, options, 5);
  for (int i = 0; i < 5; ++i) trainer.train_iteration(factory());
  const double early = trainer.policy().probs({1.0})[2];
  for (int i = 0; i < 60; ++i) trainer.train_iteration(factory());
  const double late = trainer.policy().probs({1.0})[2];
  EXPECT_LT(early, 0.6);  // still exploring under the high coefficient
  EXPECT_GT(late, early);  // sharpened once the bonus decayed away
}

}  // namespace
