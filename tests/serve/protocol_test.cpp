// Wire protocol of genet_serve (serve/frame.hpp): encode/decode roundtrips
// for every message type and the FrameReader's incremental-reassembly
// contract -- partial reads, torn length prefixes, several frames per read,
// and the two unrecoverable stream states (zero-length and oversized
// prefixes) that must throw instead of allocating or desynchronizing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "serve/frame.hpp"

namespace {

using serve::FrameReader;
using serve::MsgType;
using serve::ProtocolError;

std::string le32(std::uint32_t v) {
  std::string out(4, '\0');
  std::memcpy(out.data(), &v, 4);  // test runs little-endian (x86/arm64)
  return out;
}

TEST(Frames, ActRoundtripPreservesDoubleBits) {
  // The protocol ships IEEE-754 bit patterns: signed zero, denormals, and
  // values with no short decimal form must survive exactly.
  const std::vector<double> obs = {
      0.0, -0.0, 1.0 / 3.0, -2.25,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max()};
  std::string buf;
  serve::encode_act(buf, 0xdeadbeefcafe1234ull, obs.data(), obs.size());

  FrameReader reader;
  reader.feed(buf.data(), buf.size());
  const auto body = reader.next();
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(serve::type_of(*body), MsgType::kAct);
  const serve::ActRequest req = serve::decode_act(*body);
  EXPECT_EQ(req.session_id, 0xdeadbeefcafe1234ull);
  ASSERT_EQ(req.obs.size(), obs.size());
  for (std::size_t i = 0; i < obs.size(); ++i) {
    EXPECT_EQ(std::memcmp(&req.obs[i], &obs[i], sizeof(double)), 0)
        << "double bits changed at index " << i;
  }
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(Frames, ResponseRoundtrips) {
  std::string buf;
  serve::HelloResponse hello;
  hello.obs_size = 10;
  hello.action_count = 6;
  hello.policy_version = 3;
  serve::encode_hello_ok(buf, hello);
  serve::ActResponse act;
  act.session_id = 77;
  act.action = 5;
  act.policy_version = 3;
  serve::encode_act_ok(buf, act);
  serve::encode_close_ok(buf, 77);
  serve::encode_error(buf, "observation size mismatch");

  FrameReader reader;
  reader.feed(buf.data(), buf.size());

  const auto h = reader.next();
  ASSERT_TRUE(h.has_value());
  const serve::HelloResponse hd = serve::decode_hello_ok(*h);
  EXPECT_EQ(hd.protocol, serve::kProtocolVersion);
  EXPECT_EQ(hd.obs_size, 10u);
  EXPECT_EQ(hd.action_count, 6u);
  EXPECT_EQ(hd.policy_version, 3u);

  const auto a = reader.next();
  ASSERT_TRUE(a.has_value());
  const serve::ActResponse ad = serve::decode_act_ok(*a);
  EXPECT_EQ(ad.session_id, 77u);
  EXPECT_EQ(ad.action, 5);
  EXPECT_EQ(ad.policy_version, 3u);

  const auto c = reader.next();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(serve::decode_close_ok(*c), 77u);

  const auto e = reader.next();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(serve::type_of(*e), MsgType::kError);
  EXPECT_EQ(serve::decode_error(*e), "observation size mismatch");
  EXPECT_FALSE(reader.next().has_value());
}

TEST(FrameReaderTest, ByteAtATimeFeedReassembles) {
  // The pathological partial-read case: every recv() returns one byte.
  const double obs[3] = {1.5, -2.5, 3.5};
  std::string buf;
  serve::encode_hello(buf);
  serve::encode_act(buf, 9, obs, 3);
  serve::encode_close(buf, 9);

  FrameReader reader;
  std::vector<std::string> frames;
  for (const char byte : buf) {
    reader.feed(&byte, 1);
    while (auto body = reader.next()) frames.push_back(*body);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(serve::type_of(frames[0]), MsgType::kHello);
  EXPECT_EQ(serve::decode_act(frames[1]).session_id, 9u);
  EXPECT_EQ(serve::decode_close(frames[2]), 9u);
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(FrameReaderTest, TornLengthPrefixWaitsForMoreBytes) {
  std::string buf;
  serve::encode_close(buf, 4);
  ASSERT_GT(buf.size(), 4u);

  FrameReader reader;
  // Only 2 of the 4 prefix bytes: not a frame, not an error.
  reader.feed(buf.data(), 2);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.pending_bytes(), 2u);
  // Rest of the prefix but no body yet: still waiting.
  reader.feed(buf.data() + 2, 2);
  EXPECT_FALSE(reader.next().has_value());
  // Body arrives: the frame completes.
  reader.feed(buf.data() + 4, buf.size() - 4);
  const auto body = reader.next();
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(serve::decode_close(*body), 4u);
}

TEST(FrameReaderTest, SeveralFramesPerFeedPlusTail) {
  const double obs[2] = {0.25, 0.5};
  std::string buf;
  for (int i = 0; i < 5; ++i) {
    serve::encode_act(buf, static_cast<std::uint64_t>(i), obs, 2);
  }
  std::string tail;
  serve::encode_close(tail, 99);
  buf += tail.substr(0, 3);  // a torn prefix after the complete frames

  FrameReader reader;
  reader.feed(buf.data(), buf.size());
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto body = reader.next();
    ASSERT_TRUE(body.has_value());
    EXPECT_EQ(serve::decode_act(*body).session_id, i);
  }
  EXPECT_FALSE(reader.next().has_value());
  reader.feed(tail.data() + 3, tail.size() - 3);
  const auto last = reader.next();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(serve::decode_close(*last), 99u);
}

TEST(FrameReaderTest, ZeroLengthPrefixIsAProtocolError) {
  FrameReader reader;
  const std::string bad = le32(0);
  reader.feed(bad.data(), bad.size());
  EXPECT_THROW(reader.next(), ProtocolError);
}

TEST(FrameReaderTest, OversizedPrefixThrowsWithoutAllocating) {
  // A corrupt or malicious prefix advertising a huge body must be rejected
  // from the 4 prefix bytes alone -- no waiting, no 4 GiB buffer.
  FrameReader reader;
  const std::string bad = le32(serve::kMaxFrameBytes + 1);
  reader.feed(bad.data(), bad.size());
  EXPECT_THROW(reader.next(), ProtocolError);

  FrameReader reader2;
  const std::string worse = le32(0xffffffffu);
  reader2.feed(worse.data(), worse.size());
  EXPECT_THROW(reader2.next(), ProtocolError);
}

TEST(FrameReaderTest, MaxSizeFrameIsAccepted) {
  const std::string body(serve::kMaxFrameBytes, 'x');
  std::string buf = le32(serve::kMaxFrameBytes) + body;
  FrameReader reader;
  reader.feed(buf.data(), buf.size());
  const auto got = reader.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), body.size());
}

TEST(Decoders, RejectMalformedBodies) {
  // Empty body / unknown type byte.
  EXPECT_THROW(serve::type_of(""), ProtocolError);
  EXPECT_THROW(serve::type_of(std::string(1, '\x55')), ProtocolError);

  // A truncated act body (type + half a session id).
  std::string truncated;
  truncated.push_back(static_cast<char>(MsgType::kAct));
  truncated += std::string(4, '\0');
  EXPECT_THROW(serve::decode_act(truncated), ProtocolError);

  // An act body whose observation bytes are not a multiple of 8.
  const double obs[1] = {1.0};
  std::string framed;
  serve::encode_act(framed, 1, obs, 1);
  std::string body = framed.substr(4);  // strip the length prefix
  body.push_back('\0');                 // 9 trailing obs bytes now
  EXPECT_THROW(serve::decode_act(body), ProtocolError);

  // Trailing junk after a fixed-layout body.
  std::string close_framed;
  serve::encode_close(close_framed, 2);
  std::string close_body = close_framed.substr(4);
  close_body.push_back('\0');
  EXPECT_THROW(serve::decode_close(close_body), ProtocolError);

  // Cross-decoding: a close body through the act decoder.
  EXPECT_THROW(serve::decode_act(close_framed.substr(4)), ProtocolError);
}

}  // namespace
