// End-to-end tests for the serving daemon engine (serve/server.hpp): batched
// answers must equal direct greedy policy evaluation, semantic errors keep
// the connection while protocol errors drop it, a client vanishing
// mid-request must not take the server down (the no-SIGPIPE contract), and
// hot swaps must change the served version without failing a single request
// -- including the failed-swap case, where a corrupt checkpoint is skipped
// and the old policy keeps serving.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "netgym/rng.hpp"
#include "rl/policy.hpp"
#include "serve/client.hpp"
#include "serve/policy_store.hpp"
#include "serve/server.hpp"

namespace {

namespace fs = std::filesystem;

constexpr int kObs = 8;
constexpr int kActs = 4;

/// Fresh scratch directory per test.
fs::path test_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("serve_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Deterministic policy checkpoint; different seeds give different argmaxes.
std::string write_policy(const fs::path& path, std::uint64_t seed) {
  netgym::Rng rng(seed);
  rl::MlpPolicy policy(kObs, kActs, {16, 16}, rng);
  serve::write_policy_checkpoint(policy, "test", path.string());
  return path.string();
}

std::unique_ptr<serve::Server> start_server(const std::string& checkpoint,
                                            serve::ServerOptions opt = {}) {
  auto server = std::make_unique<serve::Server>(opt);
  server->store().load_file(checkpoint);
  server->start();
  return server;
}

std::vector<double> make_obs(std::uint64_t salt) {
  std::vector<double> obs(kObs);
  netgym::Rng rng(salt + 1000);
  for (double& v : obs) v = rng.uniform(-1.0, 1.0);
  return obs;
}

TEST(ServeServer, HelloReportsPolicyShapeAndVersion) {
  const fs::path dir = test_dir("hello");
  auto server = start_server(write_policy(dir / "p.ckpt", 1));
  serve::Client client = serve::Client::connect_tcp(server->port());
  const serve::HelloResponse hello = client.hello();
  EXPECT_EQ(hello.protocol, serve::kProtocolVersion);
  EXPECT_EQ(hello.obs_size, static_cast<std::uint32_t>(kObs));
  EXPECT_EQ(hello.action_count, static_cast<std::uint32_t>(kActs));
  EXPECT_EQ(hello.policy_version, 1u);
}

TEST(ServeServer, BatchedAnswersMatchDirectGreedyPolicy) {
  // The batching shards coalesce concurrent requests into act_batch calls;
  // every served action must equal what the greedy policy computes directly
  // on the same observation bits.
  const fs::path dir = test_dir("correctness");
  const std::string ckpt = write_policy(dir / "p.ckpt", 7);
  serve::ServerOptions opt;
  opt.shards = 3;
  opt.batch_window_us = 100;
  auto server = start_server(ckpt, opt);

  const std::unique_ptr<rl::MlpPolicy> reference =
      serve::load_policy_checkpoint(ckpt).instantiate();
  netgym::Rng dummy(0);  // greedy argmax never draws from it

  constexpr int kClients = 4;
  constexpr int kPerClient = 64;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client = serve::Client::connect_tcp(server->port());
      for (int i = 0; i < kPerClient; ++i) {
        const std::uint64_t sid =
            static_cast<std::uint64_t>(c) * kPerClient + i;
        const std::vector<double> obs = make_obs(sid);
        const serve::ActResponse r = client.act(sid, obs.data(), obs.size());
        netgym::Rng* rngs[1] = {&dummy};
        int expected = -1;
        reference->act_batch(obs.data(), 1, rngs, &expected);
        if (r.action != expected) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ServeServer, ObsSizeMismatchIsSemanticErrorConnectionSurvives) {
  const fs::path dir = test_dir("mismatch");
  auto server = start_server(write_policy(dir / "p.ckpt", 1));
  serve::Client client = serve::Client::connect_tcp(server->port());

  const std::vector<double> wrong(kObs + 3, 0.5);
  std::string out;
  serve::encode_act(out, 1, wrong.data(), wrong.size());
  client.send_raw(out);
  const std::string body = client.read_frame();
  ASSERT_EQ(serve::type_of(body), serve::MsgType::kError);
  EXPECT_NE(serve::decode_error(body).find("observation"), std::string::npos);

  // The same connection still serves valid requests afterwards.
  const std::vector<double> right = make_obs(1);
  const serve::ActResponse r = client.act(1, right.data(), right.size());
  EXPECT_GE(r.action, 0);
  EXPECT_LT(r.action, kActs);
}

TEST(ServeServer, MalformedFrameGetsErrorThenHangup) {
  const fs::path dir = test_dir("malformed");
  auto server = start_server(write_policy(dir / "p.ckpt", 1));
  serve::Client client = serve::Client::connect_tcp(server->port());

  // A well-framed body with an unknown type byte: protocol error.
  std::string frame(4, '\0');
  frame[0] = 1;  // length = 1
  frame.push_back('\x55');
  client.send_raw(frame);
  const std::string body = client.read_frame();
  EXPECT_EQ(serve::type_of(body), serve::MsgType::kError);
  // The server closes the stream after the diagnostic.
  EXPECT_THROW(client.read_frame(), std::runtime_error);

  // The server itself is unharmed.
  serve::Client again = serve::Client::connect_tcp(server->port());
  EXPECT_EQ(again.hello().policy_version, 1u);
}

TEST(ServeServer, OversizedLengthPrefixDropsConnection) {
  const fs::path dir = test_dir("oversized");
  auto server = start_server(write_policy(dir / "p.ckpt", 1));
  serve::Client client = serve::Client::connect_tcp(server->port());

  const std::uint32_t huge = serve::kMaxFrameBytes + 1;
  std::string prefix(4, '\0');
  std::memcpy(prefix.data(), &huge, 4);
  client.send_raw(prefix);
  // Error frame (if it arrives before the close) then EOF; either way the
  // connection must end rather than wait for a 128 KiB+ body.
  try {
    const std::string body = client.read_frame();
    EXPECT_EQ(serve::type_of(body), serve::MsgType::kError);
    EXPECT_THROW(client.read_frame(), std::runtime_error);
  } catch (const std::runtime_error&) {
    // Server hung up immediately -- also acceptable.
  }
  serve::Client again = serve::Client::connect_tcp(server->port());
  EXPECT_EQ(again.hello().policy_version, 1u);
}

TEST(ServeServer, ClientDisconnectMidRequestDoesNotKillServer) {
  // Pipeline a burst of requests and slam the connection shut before
  // reading any response: the shard workers will write into a dead socket.
  // MSG_NOSIGNAL + the dead-connection path must swallow that (no SIGPIPE,
  // no crash), and the server must keep serving new clients.
  const fs::path dir = test_dir("disconnect");
  auto server = start_server(write_policy(dir / "p.ckpt", 1));
  {
    serve::Client doomed = serve::Client::connect_tcp(server->port());
    const std::vector<double> obs = make_obs(0);
    std::string burst;
    for (std::uint64_t sid = 0; sid < 200; ++sid) {
      serve::encode_act(burst, sid, obs.data(), obs.size());
    }
    doomed.send_raw(burst);
  }  // ~Client closes the fd with every response still in flight

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(server->running());
  serve::Client client = serve::Client::connect_tcp(server->port());
  const std::vector<double> obs = make_obs(3);
  const serve::ActResponse r = client.act(3, obs.data(), obs.size());
  EXPECT_GE(r.action, 0);
}

TEST(ServeServer, CloseSessionDropsStateAndAnswers) {
  const fs::path dir = test_dir("close");
  auto server = start_server(write_policy(dir / "p.ckpt", 1));
  serve::Client client = serve::Client::connect_tcp(server->port());
  const std::vector<double> obs = make_obs(5);
  client.act(5, obs.data(), obs.size());
  client.close_session(5);
  // Closing a session that never existed is also answered, not an error.
  client.close_session(999);
}

TEST(ServeServer, HotSwapChangesServedVersionWithZeroFailures) {
  const fs::path dir = test_dir("hotswap");
  write_policy(dir / "policy_v1.ckpt", 1);
  serve::ServerOptions opt;
  opt.watch_dir = dir.string();
  opt.watch_poll_ms = 10;
  auto server = std::make_unique<serve::Server>(opt);
  server->store().load_latest(dir.string());
  server->start();

  serve::Client client = serve::Client::connect_tcp(server->port());
  const std::vector<double> obs = make_obs(1);
  EXPECT_EQ(client.act(1, obs.data(), obs.size()).policy_version, 1u);

  // Drop v2 with the atomic-rename contract the trainer uses.
  write_policy(dir / "policy_v2.ckpt.tmp", 2);
  fs::rename(dir / "policy_v2.ckpt.tmp", dir / "policy_v2.ckpt");

  // Keep issuing requests; every one must succeed, and the served version
  // must move to 2 within a few poll intervals.
  std::uint32_t seen = 1;
  for (int i = 0; i < 500 && seen != 2; ++i) {
    const serve::ActResponse r = client.act(1, obs.data(), obs.size());
    seen = r.policy_version;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(seen, 2u);
  EXPECT_EQ(server->store().current()->version, 2u);

  // Served actions now match the v2 policy directly.
  const std::unique_ptr<rl::MlpPolicy> v2 =
      serve::load_policy_checkpoint((dir / "policy_v2.ckpt").string())
          .instantiate();
  netgym::Rng dummy(0);
  netgym::Rng* rngs[1] = {&dummy};
  int expected = -1;
  v2->act_batch(obs.data(), 1, rngs, &expected);
  EXPECT_EQ(client.act(1, obs.data(), obs.size()).action, expected);
}

TEST(ServeServer, CorruptCheckpointIsSkippedOldPolicyKeepsServing) {
  const fs::path dir = test_dir("badswap");
  write_policy(dir / "policy_v1.ckpt", 1);
  serve::ServerOptions opt;
  opt.watch_dir = dir.string();
  opt.watch_poll_ms = 10;
  auto server = std::make_unique<serve::Server>(opt);
  server->store().load_latest(dir.string());
  server->start();

  // A later-named file that is not a valid checkpoint at all.
  {
    std::ofstream bad(dir / "policy_v2.ckpt", std::ios::binary);
    bad << "this is not a checkpoint";
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  serve::Client client = serve::Client::connect_tcp(server->port());
  const std::vector<double> obs = make_obs(2);
  for (int i = 0; i < 20; ++i) {
    const serve::ActResponse r = client.act(2, obs.data(), obs.size());
    EXPECT_EQ(r.policy_version, 1u) << "corrupt checkpoint was installed";
  }
  EXPECT_EQ(server->store().current()->version, 1u);

  // Recovery: a good checkpoint with a later name still swaps in.
  write_policy(dir / "policy_v3.ckpt.tmp", 3);
  fs::rename(dir / "policy_v3.ckpt.tmp", dir / "policy_v3.ckpt");
  std::uint32_t seen = 1;
  for (int i = 0; i < 500 && seen != 2; ++i) {
    seen = client.act(2, obs.data(), obs.size()).policy_version;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(seen, 2u);  // second successful load -> version counter 2
}

TEST(ServeServer, ServesOverUnixSocket) {
  const fs::path dir = test_dir("unix");
  serve::ServerOptions opt;
  opt.unix_path = (dir / "genet.sock").string();
  auto server = std::make_unique<serve::Server>(opt);
  server->store().load_file(write_policy(dir / "p.ckpt", 1));
  server->start();

  serve::Client client = serve::Client::connect_unix(opt.unix_path);
  EXPECT_EQ(client.hello().policy_version, 1u);
  const std::vector<double> obs = make_obs(8);
  EXPECT_GE(client.act(8, obs.data(), obs.size()).action, 0);
  server->stop();
  // Graceful stop removes the socket file.
  EXPECT_FALSE(fs::exists(opt.unix_path));
}

TEST(ServeServer, StopIsIdempotentAndRestartableStore) {
  const fs::path dir = test_dir("stop");
  auto server = start_server(write_policy(dir / "p.ckpt", 1));
  server->stop();
  server->stop();  // second stop is a no-op
  EXPECT_FALSE(server->running());
}

TEST(ServePolicyStore, LoadRejectsMissingAndTruncatedFiles) {
  const fs::path dir = test_dir("store");
  serve::PolicyStore store;
  EXPECT_THROW(store.load_file((dir / "absent.ckpt").string()),
               std::exception);
  EXPECT_EQ(store.current(), nullptr);

  const std::string good = write_policy(dir / "good.ckpt", 1);
  std::ifstream in(good, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  {
    std::ofstream out(dir / "trunc.ckpt", std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(store.load_file((dir / "trunc.ckpt").string()),
               std::exception);

  store.load_file(good);
  ASSERT_NE(store.current(), nullptr);
  EXPECT_EQ(store.current()->version, 1u);
  EXPECT_EQ(store.current()->task, "test");
  // A failed load after a good one keeps the good policy.
  EXPECT_THROW(store.load_file((dir / "trunc.ckpt").string()),
               std::exception);
  EXPECT_EQ(store.current()->version, 1u);
}

TEST(ServePolicyStore, LoadLatestPicksLexicographicallyGreatestName) {
  const fs::path dir = test_dir("latest");
  write_policy(dir / "policy_v0001.ckpt", 1);
  write_policy(dir / "policy_v0002.ckpt", 2);
  write_policy(dir / "policy_v0010.ckpt", 3);
  {
    std::ofstream tmp(dir / "policy_v9999.ckpt.tmp");  // in-flight write
    tmp << "ignored";
  }
  serve::PolicyStore store;
  const std::string loaded = store.load_latest(dir.string());
  EXPECT_NE(loaded.find("policy_v0010.ckpt"), std::string::npos);
}

}  // namespace
