#include "traces/tracesets.hpp"

#include <gtest/gtest.h>

#include "netgym/stats.hpp"

namespace {

using traces::TraceSet;

TEST(TraceSets, InfoIsConsistent) {
  for (TraceSet set : traces::all_sets()) {
    const auto& meta = traces::info(set);
    EXPECT_FALSE(meta.name.empty());
    EXPECT_GT(meta.train_count, 0);
    EXPECT_GT(meta.test_count, 0);
    EXPECT_GT(meta.duration_s, 0.0);
  }
  EXPECT_TRUE(traces::info(TraceSet::kFcc).for_abr);
  EXPECT_TRUE(traces::info(TraceSet::kNorway).for_abr);
  EXPECT_FALSE(traces::info(TraceSet::kCellular).for_abr);
  EXPECT_FALSE(traces::info(TraceSet::kEthernet).for_abr);
}

class TraceSetValidity : public ::testing::TestWithParam<TraceSet> {};

TEST_P(TraceSetValidity, AllTracesAreValidAndCoverDuration) {
  const TraceSet set = GetParam();
  const auto& meta = traces::info(set);
  for (bool test_split : {false, true}) {
    const auto corpus = traces::make_corpus(set, test_split);
    EXPECT_EQ(corpus.size(), static_cast<std::size_t>(
                                 test_split ? meta.test_count
                                            : meta.train_count));
    for (const auto& trace : corpus) {
      ASSERT_NO_THROW(trace.validate());
      EXPECT_GE(trace.duration_s(), meta.duration_s - 1.0);
      EXPECT_GT(trace.min_bandwidth(), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSets, TraceSetValidity,
                         ::testing::ValuesIn(traces::all_sets()));

TEST(TraceSets, DeterministicAndDistinctPerIndex) {
  const auto a = traces::make_trace(TraceSet::kFcc, false, 0);
  const auto b = traces::make_trace(TraceSet::kFcc, false, 0);
  const auto c = traces::make_trace(TraceSet::kFcc, false, 1);
  const auto d = traces::make_trace(TraceSet::kFcc, true, 0);
  EXPECT_EQ(a.bandwidth_mbps, b.bandwidth_mbps);
  EXPECT_NE(a.bandwidth_mbps, c.bandwidth_mbps);
  EXPECT_NE(a.bandwidth_mbps, d.bandwidth_mbps);
}

TEST(TraceSets, IndexOutOfSplitThrows) {
  EXPECT_THROW(traces::make_trace(TraceSet::kFcc, false, -1),
               std::out_of_range);
  EXPECT_THROW(
      traces::make_trace(TraceSet::kFcc, false,
                         traces::info(TraceSet::kFcc).train_count),
      std::out_of_range);
}

/// The whole point of the stand-in corpora: the sets must be statistically
/// distinct so cross-set tests exhibit distribution shift (Fig. 3, Fig. 13).
TEST(TraceSets, SignaturesAreDistinct) {
  auto mean_of_set = [](TraceSet set) {
    std::vector<double> means;
    for (const auto& trace : traces::make_corpus(set, false)) {
      means.push_back(trace.mean_bandwidth());
    }
    return netgym::mean(means);
  };
  auto roughness_of_set = [](TraceSet set) {
    std::vector<double> values;
    for (const auto& trace : traces::make_corpus(set, false)) {
      values.push_back(trace.non_smoothness() / trace.mean_bandwidth());
    }
    return netgym::mean(values);
  };

  // Ethernet is much faster and smoother than Cellular.
  EXPECT_GT(mean_of_set(TraceSet::kEthernet),
            3.0 * mean_of_set(TraceSet::kCellular));
  EXPECT_LT(roughness_of_set(TraceSet::kEthernet),
            0.5 * roughness_of_set(TraceSet::kCellular));
  // Norway (3G) is slower and rougher than FCC broadband.
  EXPECT_LT(mean_of_set(TraceSet::kNorway), mean_of_set(TraceSet::kFcc));
  EXPECT_GT(roughness_of_set(TraceSet::kNorway),
            2.0 * roughness_of_set(TraceSet::kFcc));
}

TEST(TraceSets, TrainAndTestSplitsShareTheDistribution) {
  // In-set train/test means should be close (same generator, same family),
  // relative to the cross-set differences above.
  for (TraceSet set : traces::all_sets()) {
    std::vector<double> train_means, test_means;
    for (const auto& t : traces::make_corpus(set, false)) {
      train_means.push_back(t.mean_bandwidth());
    }
    for (const auto& t : traces::make_corpus(set, true)) {
      test_means.push_back(t.mean_bandwidth());
    }
    const double train_mean = netgym::mean(train_means);
    const double test_mean = netgym::mean(test_means);
    EXPECT_LT(std::abs(train_mean - test_mean),
              0.5 * std::max(train_mean, test_mean))
        << traces::info(set).name;
  }
}

}  // namespace
