// genet — command-line frontend for the library.
//
//   genet train  --task abr --method genet --baseline mpc --iters 3000
//                --seed 1 --out policy.model
//   genet eval   --task abr --model policy.model --envs 100
//   genet eval   --task cc  --model policy.model --trace-set cellular
//   genet search --task abr --model policy.model --baseline mpc --trials 15
//   genet trace  --kind abr --duration 200 --out link.trace
//   genet export --task abr --model policy.model --out policy.ckpt
//
// `train` supports methods rl (traditional, Algorithm 1), genet
// (Algorithm 2), cl1/cl2/cl3 (the alternative curricula of S5.5) and
// ensemble (footnote 6). `eval` reports the greedy policy's mean reward on
// synthetic environments or on one of the built-in trace sets. `search`
// runs one round of the sequencing module and prints every BO trial.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <fstream>

#include <filesystem>

#include "dist/coordinator.hpp"
#include "dist/worker.hpp"
#include "fleet/fleet.hpp"
#include "fleet/report.hpp"
#include "genet/adapter.hpp"
#include "genet/curriculum.hpp"
#include "netgym/checkpoint.hpp"
#include "netgym/exposition.hpp"
#include "netgym/flight.hpp"
#include "netgym/health.hpp"
#include "netgym/parallel.hpp"
#include "netgym/parse.hpp"
#include "netgym/stats.hpp"
#include "netgym/telemetry.hpp"
#include "netgym/trace.hpp"
#include "netgym/tracing.hpp"
#include "nn/gemm.hpp"
#include "serve/policy_store.hpp"
#include "traces/tracesets.hpp"

namespace {

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, R"(usage: genet <command> [options]

commands:
  train   --task abr|cc|lb [--space 1|2|3] [--method rl|genet|cl1|cl2|cl3|ensemble]
          [--baseline NAME] [--iters N] [--rounds N] [--trials N] [--envs N]
          [--seed N] --out FILE
          [--workers N] [--dist-timeout-ms MS]
            distributed curriculum training (DESIGN.md S5i): with
            --workers N >= 1 (default: the GENET_WORKERS env var, else 0 =
            in-process), curriculum gap evaluations and model-zoo trainings
            are sharded across N forked worker processes. Results are
            bit-identical to --workers 0 at any worker count, including
            across worker crashes (dead workers' work is reassigned).
            --dist-timeout-ms (env: GENET_DIST_TIMEOUT_MS, default 120000)
            is the per-work-unit deadline before a worker is declared dead.
          [--trace-ship-max-bytes N]
            cap on the span batch a worker piggybacks on one result frame
            when tracing is enabled (env: GENET_TRACE_SHIP_MAX_BYTES,
            default 1048576, range 4096..8388608); a worker drops its
            oldest spans (counted) rather than exceed it.
          [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
            crash-safe snapshots: with --checkpoint-dir (default: the
            GENET_CHECKPOINT_DIR env var), training writes DIR/latest.ckpt
            after every N curriculum rounds (method rl: every N iterations;
            default 1). --resume restarts from DIR/latest.ckpt when present;
            the resumed run is bit-identical to an uninterrupted one.
  eval    --task abr|cc|lb [--space 1|2|3] --model FILE
          [--envs N | --trace-set fcc|norway|cellular|ethernet [--split train|test]]
  search  --task abr|cc|lb [--space 1|2|3] --model FILE [--baseline NAME]
          [--trials N] [--seed N]
  trace   --kind abr|cc|fcc|norway|cellular|ethernet [--duration S]
          [--max-bw MBPS] [--index N] --out FILE
  export  --task abr|cc|lb --model FILE --out FILE.ckpt
            convert a trained text model into the binary serve checkpoint
            (CRC-framed, exact parameter bit patterns) that genet_serve
            loads and hot-swaps; see DESIGN.md S5g.
  fleet   --task abr|cc|lb (--model FILE | --checkpoint FILE.ckpt)
          [--sessions N] [--trace-prob P] [--seed N] [--shards N]
          [--worst-k N] [--out-dir DIR] [--json FILE] [--digest FILE]
          [--slo-strict]
            replay the policy over N heterogeneous sessions (default
            100000) split across the task's default scenario mix (synthetic
            + recorded-trace scenarios, device diversity, online SLOs),
            streaming population percentiles through merged histograms;
            see DESIGN.md S5h. --trace-prob (default 0.5, also the
            GENET_FLEET_TRACE_PROB env var) sets the recorded-trace share
            of trace-backed scenarios. --out-dir enables per-scenario
            worst-k flight dumps; --json writes BENCH_fleet-schema JSON
            (render with scripts/slo_report.py); --digest writes the
            canonical determinism digest (byte-identical at any thread
            count); --slo-strict exits nonzero when any SLO fails.

every command also accepts:
  --threads N     worker threads for rollouts and evaluations (default: the
                  GENET_THREADS env var, else all hardware threads; results
                  are identical at any thread count)
  --math MODE     floating-point mode for the batched MLP kernels: 'strict'
                  (default; bit-identical to per-sample math at any batch
                  size or thread count) or 'fast' (AVX2/FMA kernels when the
                  CPU has them; same answers to ~1 ulp per multiply-add but
                  not bit-identical, and batch-size-dependent). Defaults to
                  the GENET_MATH env var when set.
  --log-file F    write a JSONL run-telemetry trajectory (per-iteration,
                  per-round, and per-BO-trial events) to F; defaults to the
                  GENET_LOG env var when set. Telemetry never changes results.
  --trace-out F   write a Chrome trace-event JSON span profile (round ->
                  bo_trial -> eval -> episode nesting; open in Perfetto) to
                  F; defaults to the GENET_TRACE env var when set.
  --flight-out F  enable the episode flight recorder and dump the worst-k
                  episodes (step-level actions/rewards/env internals) as
                  JSONL to F; defaults to the GENET_FLIGHT env var when set.
  --flight-k N    how many worst episodes to retain (default 8).
  --health-out F  enable the training-health watchdog (gradient norms,
                  approximate update-KL, explained variance, NaN sentinels,
                  alert rules) and write its JSONL records to F. When
                  --log-file / GENET_LOG already installed a sink, health
                  records flow to that sink instead and F is ignored.
                  Defaults to the GENET_HEALTH env var when set. Strictly
                  observational: results are bit-identical with it on or off.
  --health-fail-fast
                  abort with a nonzero exit when the watchdog sees any
                  non-finite value (env: GENET_HEALTH_FAIL_FAST=1).
  --metrics-out F dump the final metrics table (counters, timers, histogram
                  p50/p90/p99/max) to F; '-' writes to stdout.
  --metrics-port P
                  serve a live Prometheus text-exposition scrape of the
                  metrics registry on 127.0.0.1:P for the duration of the
                  run (0 picks an ephemeral port, printed on stdout);
                  defaults to the GENET_METRICS_PORT env var when set.
                  Read-only and localhost-only; results are bit-identical
                  with it on or off.
)");
  std::exit(2);
}

using Options = std::map<std::string, std::string>;

void save_params(const std::string& path, const std::vector<double>& params) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out.precision(17);
  out << params.size() << "\n";
  for (double p : params) out << p << "\n";
}

std::vector<double> load_params(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::size_t n = 0;
  in >> n;
  std::vector<double> params(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(in >> params[i])) {
      throw std::runtime_error("truncated model file " + path);
    }
  }
  return params;
}

Options parse(int argc, char** argv, int first) {
  Options options;
  for (int i = first; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) usage("expected --option");
    const std::string key = argv[i] + 2;
    if (key == "resume" || key == "health-fail-fast" || key == "slo-strict") {
      options[key] = "1";  // boolean flags: take no value
      continue;
    }
    if (i + 1 >= argc) usage(("missing value for --" + key).c_str());
    options[key] = argv[++i];
  }
  return options;
}

std::string get(const Options& options, const std::string& key,
                const std::string& fallback) {
  const auto it = options.find(key);
  return it == options.end() ? fallback : it->second;
}

std::string require(const Options& options, const std::string& key) {
  const auto it = options.find(key);
  if (it == options.end()) usage(("--" + key + " is required").c_str());
  return it->second;
}

// Validated numeric option parsing: every numeric flag goes through these, so
// `--iters 3x0` fails with a clear message instead of an uncaught
// std::invalid_argument from a raw std::stoi (and trailing garbage is an
// error instead of being silently ignored).

long long parse_integer(const std::string& flag, const std::string& value) {
  std::int64_t result = 0;
  if (!netgym::parse_i64(value, result)) {
    throw std::invalid_argument("--" + flag + " expects an integer, got '" +
                                value + "'");
  }
  return result;
}

double parse_number(const std::string& flag, const std::string& value) {
  double result = 0.0;
  if (!netgym::parse_f64(value, result)) {
    throw std::invalid_argument("--" + flag + " expects a number, got '" +
                                value + "'");
  }
  return result;
}

int get_int(const Options& options, const std::string& key, int fallback) {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  return static_cast<int>(parse_integer(key, it->second));
}

std::uint64_t get_seed(const Options& options) {
  const auto it = options.find("seed");
  if (it == options.end()) return 1;
  const long long seed = parse_integer("seed", it->second);
  if (seed < 0) {
    throw std::invalid_argument("--seed expects a non-negative integer, got '" +
                                it->second + "'");
  }
  return static_cast<std::uint64_t>(seed);
}

double get_double(const Options& options, const std::string& key,
                  double fallback) {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  return parse_number(key, it->second);
}

std::unique_ptr<genet::TaskAdapter> adapter_for(const Options& options) {
  const std::string task = require(options, "task");
  const int space = get_int(options, "space", 3);
  if (task == "abr") return std::make_unique<genet::AbrAdapter>(space);
  if (task == "cc") return std::make_unique<genet::CcAdapter>(space);
  if (task == "lb") return std::make_unique<genet::LbAdapter>(space);
  usage("unknown --task (want abr|cc|lb)");
}

std::string default_baseline(const genet::TaskAdapter& adapter) {
  return adapter.baseline_names().front();
}

traces::TraceSet trace_set_for(const std::string& name) {
  if (name == "fcc") return traces::TraceSet::kFcc;
  if (name == "norway") return traces::TraceSet::kNorway;
  if (name == "cellular") return traces::TraceSet::kCellular;
  if (name == "ethernet") return traces::TraceSet::kEthernet;
  usage("unknown trace set (want fcc|norway|cellular|ethernet)");
}

/// Directory for crash-safe training snapshots: --checkpoint-dir, else the
/// GENET_CHECKPOINT_DIR env var, else empty (checkpointing disabled).
std::string checkpoint_dir_of(const Options& options) {
  const auto it = options.find("checkpoint-dir");
  if (it != options.end()) return it->second;
  const char* env = std::getenv("GENET_CHECKPOINT_DIR");
  return env != nullptr ? env : "";
}

int cmd_train(const Options& options) {
  auto adapter = adapter_for(options);
  const std::string method = get(options, "method", "genet");
  const std::string out = require(options, "out");
  const std::uint64_t seed = get_seed(options);
  const int iters = get_int(options, "iters", 900);
  const int rounds = get_int(options, "rounds", 9);
  const std::string baseline =
      get(options, "baseline", default_baseline(*adapter));

  // Distributed training (DESIGN.md S5i): env var configures jobs globally,
  // the flag overrides per run, garbage in either fails loudly naming the
  // knob (pinned by ctest). workers == 0 keeps everything in-process.
  long long workers = netgym::env_i64("GENET_WORKERS", 0, 0, 1024);
  if (options.count("workers") != 0U) {
    workers = netgym::parse_i64_in_range("--workers", options.at("workers"),
                                         0, 1024);
  }
  std::int64_t dist_timeout_ms =
      netgym::env_i64("GENET_DIST_TIMEOUT_MS", 120000, 1, 86400000);
  if (options.count("dist-timeout-ms") != 0U) {
    dist_timeout_ms = netgym::parse_i64_in_range(
        "--dist-timeout-ms", options.at("dist-timeout-ms"), 1, 86400000);
  }
  std::int64_t trace_ship_max_bytes = netgym::env_i64(
      "GENET_TRACE_SHIP_MAX_BYTES", 1 << 20, 4096, 8 << 20);
  if (options.count("trace-ship-max-bytes") != 0U) {
    trace_ship_max_bytes = netgym::parse_i64_in_range(
        "--trace-ship-max-bytes", options.at("trace-ship-max-bytes"), 4096,
        8 << 20);
  }
  std::unique_ptr<dist::Coordinator> coordinator;
  if (workers > 0) {
    dist::Options dopts;
    dopts.workers = static_cast<int>(workers);
    dopts.worker_exe =
        std::filesystem::read_symlink("/proc/self/exe").string();
    dopts.worker_args = {"dist-worker"};
    dopts.timeout_ms = dist_timeout_ms;
    dopts.trace_ship_max_bytes = trace_ship_max_bytes;
    dopts.kill_worker0_after_sends = static_cast<int>(netgym::env_i64(
        "GENET_DIST_KILL_AFTER_SEND", -1, -1, 1 << 20));
    coordinator = std::make_unique<dist::Coordinator>(dopts);
    coordinator->install_hooks();
    std::printf("distributed: %d workers (per-unit deadline %lld ms)\n",
                coordinator->alive_workers(),
                static_cast<long long>(dist_timeout_ms));
  }

  const std::string ckpt_dir = checkpoint_dir_of(options);
  const int ckpt_every = get_int(options, "checkpoint-every", 1);
  const bool resume = options.count("resume") != 0U;
  if (ckpt_every < 1) {
    throw std::invalid_argument("--checkpoint-every must be >= 1");
  }
  if (resume && ckpt_dir.empty()) {
    throw std::invalid_argument(
        "--resume needs --checkpoint-dir (or GENET_CHECKPOINT_DIR)");
  }
  std::string ckpt_path;
  if (!ckpt_dir.empty()) {
    std::filesystem::create_directories(ckpt_dir);
    ckpt_path = (std::filesystem::path(ckpt_dir) / "latest.ckpt").string();
  }

  std::vector<double> params;
  if (method == "rl") {
    std::printf("traditional training: %d iterations (seed %llu)\n", iters,
                static_cast<unsigned long long>(seed));
    if (ckpt_path.empty()) {
      params = genet::train_traditional(*adapter, iters, seed)->snapshot();
    } else {
      if (iters < 1) {
        throw std::invalid_argument("--iters must be >= 1");
      }
      std::unique_ptr<rl::ActorCriticBase> trainer =
          adapter->make_trainer(seed);
      if (resume && std::filesystem::exists(ckpt_path)) {
        trainer->load_state(netgym::checkpoint::read_file(ckpt_path),
                            "trainer/");
        std::printf("resumed from %s at iteration %ld\n", ckpt_path.c_str(),
                    trainer->iterations());
      }
      netgym::ConfigDistribution dist(adapter->space());
      const rl::EnvFactory factory = adapter->factory_for(dist);
      for (long i = trainer->iterations(); i < iters; ++i) {
        trainer->train_iteration(factory);
        if ((i + 1) % ckpt_every == 0 || i + 1 == iters) {
          netgym::checkpoint::Snapshot snap;
          trainer->save_state(snap, "trainer/");
          netgym::checkpoint::write_file(snap, ckpt_path);
        }
      }
      params = trainer->snapshot();
    }
  } else {
    genet::SearchOptions search;
    search.bo_trials = get_int(options, "trials", search.bo_trials);
    search.envs_per_eval = get_int(options, "envs", search.envs_per_eval);
    genet::CurriculumOptions copt;
    copt.rounds = rounds;
    copt.iters_per_round = std::max(iters / rounds, 1);
    copt.seed = seed;
    std::unique_ptr<genet::CurriculumScheme> scheme;
    if (method == "genet") {
      scheme = std::make_unique<genet::GenetScheme>(baseline, search);
    } else if (method == "ensemble") {
      scheme = std::make_unique<genet::EnsembleGenetScheme>(
          adapter->baseline_names(), search);
    } else if (method == "cl1") {
      const std::string dim =
          adapter->name() == "lb" ? "queue_shuffle_prob"
                                  : "bw_change_interval_s";
      scheme = std::make_unique<genet::HandcraftedScheme>(
          dim, /*hard_is_low=*/adapter->name() != "lb", rounds);
    } else if (method == "cl2") {
      scheme =
          std::make_unique<genet::BaselinePerformanceScheme>(baseline, search);
    } else if (method == "cl3") {
      scheme = std::make_unique<genet::GapToOptimumScheme>(search);
    } else {
      usage("unknown --method");
    }
    std::printf("%s curriculum: %d rounds x %d iterations (seed %llu)\n",
                method.c_str(), copt.rounds, copt.iters_per_round,
                static_cast<unsigned long long>(seed));
    genet::CurriculumTrainer trainer(*adapter, std::move(scheme), copt);
    if (resume && std::filesystem::exists(ckpt_path)) {
      trainer.load_checkpoint(ckpt_path);
      std::printf("resumed from %s at round %d\n", ckpt_path.c_str(),
                  trainer.rounds_completed());
    }
    for (int r = trainer.rounds_completed(); r < copt.rounds; ++r) {
      const genet::CurriculumRound round = trainer.run_round();
      std::printf("  round %d: train reward %.3f, selection score %.3f\n",
                  round.round, round.train_reward, round.selection_score);
      if (!ckpt_path.empty() &&
          ((r + 1) % ckpt_every == 0 || r + 1 == copt.rounds)) {
        trainer.save_checkpoint(ckpt_path);
      }
    }
    params = trainer.trainer().snapshot();
  }

  if (coordinator != nullptr && coordinator->reassignments() > 0) {
    std::printf("distributed: %lld work unit(s) reassigned after worker "
                "death\n",
                static_cast<long long>(coordinator->reassignments()));
  }
  save_params(out, params);
  std::printf("saved %zu parameters to %s\n", params.size(), out.c_str());
  return 0;
}

int cmd_eval(const Options& options) {
  auto adapter = adapter_for(options);
  const std::string model = require(options, "model");
  netgym::Rng init(0);
  rl::TrainerOptions defaults;
  rl::MlpPolicy policy(adapter->obs_size(), adapter->action_count(),
                       defaults.hidden, init);
  policy.restore(load_params(model));
  policy.set_greedy(true);

  if (options.count("trace-set") != 0U) {
    const traces::TraceSet set = trace_set_for(require(options, "trace-set"));
    const bool test = get(options, "split", "test") == "test";
    const auto corpus = traces::make_corpus(set, test);
    netgym::Rng rng(9);
    const auto rewards =
        genet::test_per_trace(*adapter, policy, corpus, rng);
    std::printf("%zu traces from %s (%s split): mean reward %.4f "
                "(min %.4f, median %.4f, max %.4f)\n",
                corpus.size(), traces::info(set).name.c_str(),
                test ? "test" : "train", netgym::mean(rewards),
                netgym::min_of(rewards), netgym::median(rewards),
                netgym::max_of(rewards));
  } else {
    const int envs = get_int(options, "envs", 100);
    netgym::ConfigDistribution dist(adapter->space());
    netgym::Rng rng(77);
    const double reward =
        genet::test_on_distribution(*adapter, policy, dist, envs, rng);
    std::printf("%d synthetic environments: mean reward %.4f\n", envs,
                reward);
  }
  return 0;
}

int cmd_search(const Options& options) {
  auto adapter = adapter_for(options);
  const std::string model = require(options, "model");
  const std::string baseline =
      get(options, "baseline", default_baseline(*adapter));
  const int trials = get_int(options, "trials", 15);
  const std::uint64_t seed = get_seed(options);

  netgym::Rng init(0);
  rl::TrainerOptions defaults;
  rl::MlpPolicy policy(adapter->obs_size(), adapter->action_count(),
                       defaults.hidden, init);
  policy.restore(load_params(model));
  policy.set_greedy(true);

  genet::SearchOptions search;
  search.bo_trials = trials;
  genet::GenetScheme scheme(baseline, search);
  netgym::Rng rng(seed);
  const auto selection = scheme.select(*adapter, policy, 0, rng);
  std::printf("best gap-to-%s after %d BO trials: %.4f at\n",
              baseline.c_str(), trials, selection.score);
  const netgym::ConfigSpace& space = adapter->space();
  for (std::size_t d = 0; d < space.dims(); ++d) {
    std::printf("  %-24s = %.5g\n", space.param(d).name.c_str(),
                selection.config.values[d]);
  }
  return 0;
}

int cmd_trace(const Options& options) {
  const std::string kind = require(options, "kind");
  const std::string out = require(options, "out");
  netgym::Rng rng(get_seed(options));
  netgym::Trace trace;
  if (kind == "abr") {
    netgym::AbrTraceParams params;
    params.duration_s = get_double(options, "duration", 200);
    params.max_bw_mbps = get_double(options, "max-bw", 5);
    params.min_bw_mbps = params.max_bw_mbps * 0.2;
    trace = netgym::generate_abr_trace(params, rng);
  } else if (kind == "cc") {
    netgym::CcTraceParams params;
    params.duration_s = get_double(options, "duration", 30);
    params.max_bw_mbps = get_double(options, "max-bw", 3.16);
    trace = netgym::generate_cc_trace(params, rng);
  } else {
    const traces::TraceSet set = trace_set_for(kind);
    trace = traces::make_trace(set, /*test=*/false,
                               get_int(options, "index", 0));
  }
  netgym::save_trace(trace, out);
  std::printf("wrote %zu samples (%.1f s, mean %.2f Mbps) to %s\n",
              trace.size(), trace.duration_s(), trace.mean_bandwidth(),
              out.c_str());
  return 0;
}

int cmd_export(const Options& options) {
  auto adapter = adapter_for(options);
  const std::string model = require(options, "model");
  const std::string out = require(options, "out");
  const auto parent = std::filesystem::path(out).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  netgym::Rng init(0);
  rl::TrainerOptions defaults;
  rl::MlpPolicy policy(adapter->obs_size(), adapter->action_count(),
                       defaults.hidden, init);
  policy.restore(load_params(model));
  serve::write_policy_checkpoint(policy, adapter->name(), out);
  std::printf("exported %s policy (%zu parameters) to %s\n",
              adapter->name().c_str(), policy.snapshot().size(), out.c_str());
  return 0;
}

int cmd_fleet(const Options& options) {
  const std::string task = require(options, "task");
  fleet::metric_names(task);  // validates the task name before heavy setup

  std::unique_ptr<rl::MlpPolicy> policy;
  if (options.count("checkpoint") != 0U) {
    const serve::PolicyVersion version =
        serve::load_policy_checkpoint(options.at("checkpoint"));
    if (!version.task.empty() && version.task != task) {
      throw std::invalid_argument("checkpoint was exported for task '" +
                                  version.task + "', not '" + task + "'");
    }
    policy = version.instantiate();
  } else {
    const std::string model = require(options, "model");
    netgym::Rng init(0);
    rl::TrainerOptions defaults;
    policy = std::make_unique<rl::MlpPolicy>(fleet::task_obs_size(task),
                                             fleet::task_action_count(task),
                                             defaults.hidden, init);
    policy->restore(load_params(model));
  }
  policy->set_greedy(true);

  const long long sessions =
      options.count("sessions") != 0U
          ? parse_integer("sessions", options.at("sessions"))
          : 100000;
  // Float knob with the strict-parse contract: the env var configures fleet
  // jobs globally, the flag overrides per run; garbage in either fails
  // loudly naming the knob (pinned by ctest).
  double trace_prob = netgym::env_f64("GENET_FLEET_TRACE_PROB", 0.5, 0.0, 1.0);
  if (options.count("trace-prob") != 0U) {
    trace_prob = netgym::parse_f64_in_range("--trace-prob",
                                            options.at("trace-prob"), 0.0, 1.0);
  }

  fleet::FleetOptions fopts;
  fopts.seed = get_seed(options);
  fopts.shards = get_int(options, "shards", 256);
  fopts.worst_k = get_int(options, "worst-k", 8);
  fopts.out_dir = get(options, "out-dir", "");

  const auto scenarios = fleet::default_scenarios(task, sessions, trace_prob);
  const fleet::FleetResult result =
      fleet::run_fleet(*policy, scenarios, fopts);
  std::fputs(fleet::format_fleet_summary(result).c_str(), stdout);

  if (options.count("json") != 0U) {
    fleet::BenchInfo info;  // no determinism re-assertion in a single run
    fleet::write_fleet_json(options.at("json"), result, info);
    std::printf("wrote %s\n", options.at("json").c_str());
  }
  if (options.count("digest") != 0U) {
    const std::string& path = options.at("digest");
    std::ofstream out(path, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write " + path);
    out << fleet::canonical_digest(result);
  }
  int failed_slos = 0;
  for (const auto& sc : result.scenarios) {
    for (const auto& slo : sc.slos) {
      if (!slo.pass) ++failed_slos;
    }
  }
  if (failed_slos > 0) {
    std::printf("%d SLO(s) failing\n", failed_slos);
  }
  return options.count("slo-strict") != 0U && failed_slos > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const Options options = parse(argc, argv, 2);
  // Hidden subcommand: the coordinator re-execs this binary as a worker with
  // its socketpair fd. Handled before any env-driven telemetry/thread setup
  // so inherited GENET_LOG / GENET_THREADS cannot make a worker clobber the
  // coordinator's log file or oversubscribe the host; the worker's math mode
  // and thread count come from the coordinator's hello frame instead.
  if (command == "dist-worker") {
    try {
      const int fd = static_cast<int>(netgym::parse_i64_in_range(
          "--dist-fd", require(options, "dist-fd"), 0, 1 << 20));
      return dist::worker_main(fd);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  try {
    if (options.count("threads") != 0U) {
      netgym::set_num_threads(static_cast<int>(
          parse_integer("threads", options.at("threads"))));
    }
    if (options.count("math") != 0U) {
      try {
        nn::set_math_mode(nn::parse_math_mode(options.at("math")));
      } catch (const std::invalid_argument&) {
        usage("--math expects strict or fast");
      }
    }
    if (options.count("log-file") != 0U) {
      netgym::telemetry::open_global_logger(options.at("log-file"));
    } else {
      netgym::telemetry::open_global_logger_from_env();  // GENET_LOG
    }
    if (options.count("trace-out") != 0U) {
      netgym::tracing::install(options.at("trace-out"));
    } else {
      netgym::tracing::install_from_env();  // GENET_TRACE
    }
    // Live metrics exposition (DESIGN.md S5j): read-only, localhost-only,
    // strictly observational. Same strict-parse contract as every knob:
    // the env var configures jobs globally, the flag overrides per run,
    // garbage in either fails loudly naming the knob (pinned by ctest).
    netgym::telemetry::MetricsEndpoint metrics_endpoint;
    long long metrics_port = netgym::env_i64("GENET_METRICS_PORT", -1, 0,
                                             65535);
    if (options.count("metrics-port") != 0U) {
      metrics_port = netgym::parse_i64_in_range(
          "--metrics-port", options.at("metrics-port"), 0, 65535);
    }
    if (metrics_port >= 0) {
      metrics_endpoint.start(static_cast<int>(metrics_port));
      std::printf("metrics: listening on 127.0.0.1:%d\n",
                  metrics_endpoint.port());
    }
    if (options.count("flight-out") != 0U) {
      netgym::flight::install(options.at("flight-out"),
                              get_int(options, "flight-k", 8));
    } else {
      netgym::flight::install_from_env();  // GENET_FLIGHT / GENET_FLIGHT_K
    }
    if (options.count("health-out") != 0U ||
        options.count("health-fail-fast") != 0U) {
      netgym::health::Options hopt;
      hopt.fail_fast = options.count("health-fail-fast") != 0U;
      netgym::health::Watchdog::instance().enable(hopt);
      if (options.count("health-out") != 0U) {
        if (netgym::telemetry::logging_enabled()) {
          std::fprintf(stderr,
                       "note: a run log is already installed; health records "
                       "flow there, --health-out path ignored\n");
        } else {
          netgym::telemetry::open_global_logger(options.at("health-out"));
        }
      }
    } else {
      netgym::health::install_from_env();  // GENET_HEALTH[_FAIL_FAST]
    }
    if (netgym::telemetry::logging_enabled()) {
      std::vector<netgym::telemetry::Field> fields;
      fields.emplace_back("command", command);
      for (const auto& [key, value] : options) fields.emplace_back(key, value);
      netgym::telemetry::log_event("run_start", 0, fields);
    }
    int rc = -1;
    {
      // Span names are literals: the trace is flushed at process exit, after
      // main's locals are gone.
      const char* span_name = command == "train"    ? "cmd.train"
                              : command == "eval"   ? "cmd.eval"
                              : command == "search" ? "cmd.search"
                              : command == "trace"  ? "cmd.trace"
                              : command == "export" ? "cmd.export"
                              : command == "fleet"  ? "cmd.fleet"
                                                    : "cmd";
      netgym::tracing::TraceSpan span(span_name, "cli");
      if (command == "train") rc = cmd_train(options);
      else if (command == "eval") rc = cmd_eval(options);
      else if (command == "search") rc = cmd_search(options);
      else if (command == "trace") rc = cmd_trace(options);
      else if (command == "export") rc = cmd_export(options);
      else if (command == "fleet") rc = cmd_fleet(options);
    }
    if (rc >= 0) {
      if (options.count("metrics-out") != 0U) {
        const std::string& path = options.at("metrics-out");
        const std::string table = netgym::telemetry::format_metrics_table();
        if (path == "-") {
          std::fputs(table.c_str(), stdout);
        } else {
          std::ofstream metrics(path);
          if (!metrics) throw std::runtime_error("cannot write " + path);
          metrics << table;
        }
      }
      if (netgym::telemetry::logging_enabled()) {
        // Close the trajectory with the final metric totals (env steps,
        // episodes, rollout/update wall clock, ...). Histograms expand to
        // their percentile read-out.
        std::vector<netgym::telemetry::Field> fields;
        fields.emplace_back("exit_code", static_cast<std::int64_t>(rc));
        for (const auto& entry :
             netgym::telemetry::Registry::instance().snapshot()) {
          if (entry.kind == netgym::telemetry::Registry::Kind::kHistogram) {
            fields.emplace_back(entry.name + ".count", entry.hist.count);
            fields.emplace_back(
                entry.name + ".mean",
                entry.hist.count > 0
                    ? entry.hist.sum / static_cast<double>(entry.hist.count)
                    : 0.0);
            fields.emplace_back(entry.name + ".p50", entry.hist.p50);
            fields.emplace_back(entry.name + ".p90", entry.hist.p90);
            fields.emplace_back(entry.name + ".p99", entry.hist.p99);
            fields.emplace_back(entry.name + ".max", entry.hist.max);
          } else {
            fields.emplace_back(entry.name, entry.value);
          }
        }
        netgym::telemetry::log_event("run_end", 0, fields);
      }
      return rc;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage("unknown command");
}
