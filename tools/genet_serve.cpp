// genet_serve — the batched policy-serving daemon (DESIGN.md S5g).
//
//   genet_serve --checkpoint policy.ckpt --port 7470
//   genet_serve --watch-dir ckpts/ --unix /tmp/genet.sock --shards 4
//
// Loads a policy from a serve checkpoint (written by `genet export` or the
// training loop), answers action requests over a length-prefixed binary
// protocol (serve/frame.hpp), coalesces concurrent requests into batched
// forward passes, and hot-swaps the policy whenever a newer checkpoint
// appears in --watch-dir -- a bad checkpoint is logged and skipped, the old
// policy keeps serving. SIGINT/SIGTERM drain and exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#include "netgym/exposition.hpp"
#include "netgym/parse.hpp"
#include "netgym/telemetry.hpp"
#include "serve/server.hpp"

namespace {

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, R"(usage: genet_serve [options]

policy source (at least one required):
  --checkpoint FILE   serve checkpoint to load at startup
  --watch-dir DIR     directory to watch for hot swaps; the newest *.ckpt is
                      loaded at startup (unless --checkpoint is given) and
                      whenever a newer one appears. A checkpoint that fails
                      to load is skipped and the old policy keeps serving.

listening (default: ephemeral TCP port, printed at startup):
  --port N            listen on 127.0.0.1:N (0 picks an ephemeral port)
  --unix PATH         listen on a Unix socket instead of TCP
  --port-file FILE    write the actual TCP port to FILE (for harnesses that
                      start the daemon with --port 0)

batching:
  --shards N          batching worker shards (default 2)
  --batch-max N       max requests fused into one forward pass (default 64)
  --batch-window-us N how long a shard waits for stragglers (default 200)
  --poll-ms N         watch-directory poll interval (default 500)

observability:
  --log-file FILE     JSONL telemetry (swap events, periodic metrics);
                      defaults to the GENET_LOG env var when set
  --metrics-interval-s N
                      emit a serve_metrics snapshot every N seconds (0 off)
  --metrics-out FILE  dump the final metrics table on shutdown ('-' = stdout)
  --metrics-port N    serve a live Prometheus text-exposition scrape of the
                      metrics registry on 127.0.0.1:N (0 picks an ephemeral
                      port; read-only, localhost-only); defaults to the
                      GENET_METRICS_PORT env var when set
  --metrics-port-file FILE
                      write the actual metrics TCP port to FILE (for
                      harnesses that pass --metrics-port 0)

lifecycle:
  --max-seconds N     exit cleanly after N seconds (0 = run until signalled;
                      used by the CI smoke job)
)");
  std::exit(2);
}

using Options = std::map<std::string, std::string>;

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) usage("expected --option");
    const std::string key = argv[i] + 2;
    if (i + 1 >= argc) usage(("missing value for --" + key).c_str());
    options[key] = argv[++i];
  }
  return options;
}

std::string get(const Options& options, const std::string& key,
                const std::string& fallback) {
  const auto it = options.find(key);
  return it == options.end() ? fallback : it->second;
}

int get_int(const Options& options, const std::string& key, int fallback,
            std::int64_t lo, std::int64_t hi) {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  return static_cast<int>(
      netgym::parse_i64_in_range(("--" + key).c_str(), it->second, lo, hi));
}

volatile std::sig_atomic_t g_signalled = 0;
void on_signal(int) { g_signalled = 1; }

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);
  try {
    serve::ServerOptions sopt;
    sopt.unix_path = get(options, "unix", "");
    sopt.tcp_port = get_int(options, "port", 0, 0, 65535);
    sopt.shards = get_int(options, "shards", 2, 1, 256);
    sopt.batch_max = get_int(options, "batch-max", 64, 1, 65536);
    sopt.batch_window_us = get_int(options, "batch-window-us", 200, 0,
                                   10'000'000);
    sopt.watch_dir = get(options, "watch-dir", "");
    sopt.watch_poll_ms = get_int(options, "poll-ms", 500, 1, 3'600'000);
    sopt.metrics_interval_s =
        get_int(options, "metrics-interval-s", 0, 0, 86'400);
    const int max_seconds = get_int(options, "max-seconds", 0, 0, 86'400);
    const std::string checkpoint = get(options, "checkpoint", "");
    if (checkpoint.empty() && sopt.watch_dir.empty()) {
      usage("need --checkpoint and/or --watch-dir");
    }
    if (!sopt.unix_path.empty() && options.count("port") != 0U) {
      usage("--unix and --port are mutually exclusive");
    }

    if (options.count("log-file") != 0U) {
      netgym::telemetry::open_global_logger(options.at("log-file"));
    } else {
      netgym::telemetry::open_global_logger_from_env();  // GENET_LOG
    }

    // A client vanishing mid-response must never kill the daemon: writes use
    // MSG_NOSIGNAL, and this covers any other stray EPIPE source.
    std::signal(SIGPIPE, SIG_IGN);

    serve::Server server(sopt);
    std::string loaded;
    if (!checkpoint.empty()) {
      server.store().load_file(checkpoint);
      loaded = checkpoint;
    } else {
      loaded = server.store().load_latest(sopt.watch_dir);
    }
    const auto policy = server.store().current();
    server.start();

    // Live metrics exposition (DESIGN.md S5j): read-only, localhost-only.
    // Same strict-parse contract as the other knobs: garbage in the flag or
    // the env var fails loudly naming the knob.
    netgym::telemetry::MetricsEndpoint metrics_endpoint;
    long long metrics_port = netgym::env_i64("GENET_METRICS_PORT", -1, 0,
                                             65535);
    if (options.count("metrics-port") != 0U) {
      metrics_port = netgym::parse_i64_in_range(
          "--metrics-port", options.at("metrics-port"), 0, 65535);
    }
    if (metrics_port >= 0) {
      metrics_endpoint.start(static_cast<int>(metrics_port));
      std::printf("metrics: listening on 127.0.0.1:%d\n",
                  metrics_endpoint.port());
      if (options.count("metrics-port-file") != 0U) {
        std::ofstream mpf(options.at("metrics-port-file"));
        if (!mpf) {
          throw std::runtime_error("cannot write " +
                                   options.at("metrics-port-file"));
        }
        mpf << metrics_endpoint.port() << "\n";
      }
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    if (!sopt.unix_path.empty()) {
      std::printf("serving on %s\n", sopt.unix_path.c_str());
    } else {
      std::printf("serving on 127.0.0.1:%d\n", server.port());
    }
    std::printf("policy v%u from %s (obs %d -> %d actions%s%s)\n",
                policy->version, loaded.c_str(), policy->obs_size(),
                policy->action_count(), policy->task.empty() ? "" : ", task ",
                policy->task.c_str());
    std::fflush(stdout);
    if (options.count("port-file") != 0U) {
      std::ofstream pf(options.at("port-file"));
      if (!pf) throw std::runtime_error("cannot write " +
                                        options.at("port-file"));
      pf << server.port() << "\n";
    }

    const auto started = std::chrono::steady_clock::now();
    while (g_signalled == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (max_seconds > 0 &&
          std::chrono::steady_clock::now() - started >=
              std::chrono::seconds(max_seconds)) {
        break;
      }
    }
    server.stop();

    if (options.count("metrics-out") != 0U) {
      const std::string& path = options.at("metrics-out");
      const std::string table = netgym::telemetry::format_metrics_table();
      if (path == "-") {
        std::fputs(table.c_str(), stdout);
      } else {
        std::ofstream metrics(path);
        if (!metrics) throw std::runtime_error("cannot write " + path);
        metrics << table;
      }
    }
    std::printf("shutdown complete (policy v%u serving at exit)\n",
                server.store().current()->version);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
