// Regenerates the committed fleet regression fixture:
//
//   make_fleet_fixtures <tests/data dir>
//
// writes worst_fixture_abr.jsonl -- the worst-4 flight recordings of the
// deterministic 96-session ABR fixture fleet (fleet::write_regression_fixture).
// fleet_test re-runs the same fleet in-process and byte-compares against the
// committed file, so the fixture pins the whole sampling -> lockstep replay ->
// flight capture pipeline. Only rerun this on a *deliberate* change to fleet
// sampling, the environments' dynamics, or the flight JSONL format, and
// review the diff of the regenerated file like any other behavior change.

#include <cstdio>

#include "fleet/fleet.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_fleet_fixtures <output-dir>\n");
    return 2;
  }
  const std::string path = fleet::write_regression_fixture(argv[1]);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
