// Regenerates the reference checkpoints under tests/data/ that
// golden_checkpoint_test.cpp loads. The goldens pin backward compatibility:
// today's files must keep loading in every future build, so ONLY rerun this
// tool on a deliberate format change (bump
// netgym::checkpoint::kFormatVersion, keep decode support for version 1,
// and add new goldens next to the old ones rather than replacing them).
//
// Usage: make_golden_checkpoints <output-dir>
//
// The constants here (kGoldenMlpParams, seeds, curriculum options) are
// duplicated in tests/netgym/golden_checkpoint_test.cpp; keep them in sync.

#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/protocol.hpp"
#include "genet/adapter.hpp"
#include "genet/curriculum.hpp"
#include "netgym/checkpoint.hpp"
#include "netgym/rng.hpp"
#include "netgym/tracing.hpp"
#include "nn/mlp.hpp"
#include "rl/policy.hpp"
#include "serve/policy_store.hpp"

namespace {

namespace ckpt = netgym::checkpoint;

// 17 parameters of an Mlp{2, 3, 2}: exactly representable values plus the
// special cases (signed zero, denormal) a lossy text format would destroy.
const std::vector<double> kGoldenMlpParams = {
    0.0,  -0.0, 0.125,  -0.5,    1.5, -2.25,
    3.0,  0.75, -0.75,  std::numeric_limits<double>::denorm_min(),
    2.0,  -3.5, 4.25,   -5.125,  6.0, 0.0078125,
    -1.0};

void write_snapshot_golden(const std::string& dir) {
  ckpt::Snapshot snap;
  snap.put_i64("counters/i", -7);
  snap.put_u64("counters/u", 18446744073709551615ull);
  snap.put_double("values/pi", 3.141592653589793);
  snap.put_double("values/neg_zero", -0.0);
  snap.put_double("values/nan", std::numeric_limits<double>::quiet_NaN());
  snap.put_string("name", std::string("golden\n\x01", 8));
  snap.put_doubles("weights",
                   {1.0, -2.5, 0.0,
                    std::numeric_limits<double>::denorm_min()});
  snap.put_i64s("steps", {-3, 0, 9});
  ckpt::write_file(snap, dir + "/golden_snapshot_v1.ckpt");
}

void write_mlp_golden(const std::string& dir) {
  netgym::Rng rng(0);
  nn::Mlp mlp({2, 3, 2}, nn::Activation::kTanh, rng);
  mlp.set_params(kGoldenMlpParams);
  ckpt::Snapshot snap;
  mlp.save_state(snap, "mlp/");
  ckpt::write_file(snap, dir + "/golden_mlp_v1.ckpt");
}

void write_rng_golden(const std::string& dir) {
  // mt19937_64 raw outputs and its textual state representation are both
  // pinned by the C++ standard, so this golden is portable across standard
  // libraries: state captured mid-stream plus the next three outputs.
  netgym::Rng rng(123);
  for (int i = 0; i < 5; ++i) rng.engine()();
  ckpt::Snapshot snap;
  snap.put_string("rng", rng.state());
  netgym::Rng probe(0);
  probe.set_state(snap.get_string("rng"));
  for (int i = 0; i < 3; ++i) {
    snap.put_u64("next" + std::to_string(i), probe.engine()());
  }
  ckpt::write_file(snap, dir + "/golden_rng_v1.ckpt");
}

void write_curriculum_golden(const std::string& dir) {
  genet::LbAdapter adapter(1);
  genet::SearchOptions search;
  search.bo_trials = 2;
  search.envs_per_eval = 2;
  genet::CurriculumOptions options;
  options.rounds = 2;
  options.iters_per_round = 1;
  options.seed = 11;
  genet::CurriculumTrainer trainer(
      adapter, std::make_unique<genet::GenetScheme>("llf", search), options);
  trainer.run_round();
  trainer.save_checkpoint(dir + "/golden_curriculum_v1.ckpt");
}

void write_policy_goldens(const std::string& dir) {
  // Two serve-format policy checkpoints ({10,32,32,6} topology) with distinct
  // deterministic parameters. v1 is the daemon's startup policy in tests and
  // the CI smoke job; v2 is dropped into the watch directory mid-load to pin
  // the hot-swap path. mt19937_64 init makes the bytes reproducible.
  for (std::uint32_t v = 1; v <= 2; ++v) {
    netgym::Rng rng(v);
    rl::MlpPolicy policy(10, 6, {32, 32}, rng);
    serve::write_policy_checkpoint(
        policy, "golden-serve-v" + std::to_string(v),
        dir + "/golden_policy_v" + std::to_string(v) + ".ckpt");
  }
}

void write_dist_frames_golden(const std::string& dir) {
  // One frame of every dist protocol message, concatenated, with fixed
  // constants. tests/dist/protocol_test.cpp decodes this fixture and
  // re-encodes it byte-for-byte, pinning the wire format (framing, Snapshot
  // field layout, CRC) against accidental change: a new build must keep
  // reading frames an old build wrote. The constants are duplicated there;
  // keep them in sync. Only regenerate on a deliberate protocol bump (new
  // kDistProtocolVersion, new fixture file next to the old one).
  std::string bytes;
  dist::Hello hello;
  hello.math_mode = "strict";
  hello.threads = 2;
  hello.trace_id = 987654321098765ull;
  hello.worker_ordinal = 1;
  hello.trace_enabled = 1;
  hello.trace_capacity = 4096;
  hello.trace_ship_max_bytes = 1048576;
  dist::encode_hello(bytes, hello);
  dist::HelloOk hello_ok;
  hello_ok.pid = 4242;
  dist::encode_hello_ok(bytes, hello_ok);
  dist::EvalSetup setup;
  setup.eval_id = 7;
  setup.adapter_spec = "lb/1";
  setup.kind = "baseline";
  setup.baseline = "llf";
  setup.config = {0.5, -0.0, 1.25, std::numeric_limits<double>::denorm_min()};
  setup.policy_params = {1.0, -2.5, 0.0078125};
  setup.greedy = 1;
  setup.parent_span = 55;
  dist::encode_eval_setup(bytes, setup);
  dist::ItemsRequest items;
  items.eval_id = 7;
  items.first = 3;
  netgym::Rng stream_rng(42);
  items.streams = {stream_rng.state(), stream_rng.fork().state()};
  dist::encode_items_request(bytes, items);
  dist::ItemsResult values;
  values.eval_id = 7;
  values.first = 3;
  values.values = {-0.125, 3.141592653589793};
  // Span batch with a steady-clock ns timestamp above 2^53: pins the exact
  // i64 array encoding (a double would silently truncate it).
  netgym::tracing::RemoteSpan span0;
  span0.name = "worker.eval_item";
  span0.cat = "dist";
  span0.tid = 0;
  span0.start_ns = 9123456789012345678ll;
  span0.dur_ns = 250000;
  span0.index = 3;
  // High-bit span id: pins the u64-as-i64-bit-pattern encoding exactly.
  span0.span_id = 0x8000000000000123ull;
  span0.parent_id = 55;  // = the setup frame's parent_span
  netgym::tracing::RemoteSpan span1;
  span1.name = "worker.eval_item";
  span1.cat = "dist";
  span1.tid = 1;
  span1.start_ns = 9123456789012595678ll;
  span1.dur_ns = 1000;
  span1.index = 4;
  span1.parent_id = 55;
  values.spans.spans = {span0, span1};
  values.spans.dropped = 1;
  dist::encode_items_result(bytes, values);
  dist::TrainRequest train;
  train.train_id = 9;
  train.adapter_spec = "cc/2";
  train.iterations = 120;
  train.seed = 11;
  train.parent_span = 55;
  dist::encode_train_request(bytes, train);
  dist::TrainResult trained;
  trained.train_id = 9;
  trained.params = {0.0, -0.5, 6.0};
  trained.spans.dropped = 2;  // empty batch, only a loss count
  dist::encode_train_result(bytes, trained);
  dist::encode_shutdown(bytes);

  const std::string path = dir + "/golden_dist_frames_v2.bin";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
    throw std::runtime_error("cannot write " + path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_golden_checkpoints <output-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];
  write_snapshot_golden(dir);
  write_mlp_golden(dir);
  write_rng_golden(dir);
  write_curriculum_golden(dir);
  write_policy_goldens(dir);
  write_dist_frames_golden(dir);
  std::printf("wrote golden checkpoints to %s\n", dir.c_str());
  return 0;
}
